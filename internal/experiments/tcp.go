package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/geo"
	"spider/internal/mobility"
	"spider/internal/phy"
	"spider/internal/sim"
	"spider/internal/stats"
)

// indoorSites places n open APs next to a stationary client, all on the
// given channels (cycled), each with the given backhaul bandwidth.
func indoorSites(n int, channels []dot11.Channel, backhaulBps float64) []mobility.APSite {
	sites := make([]mobility.APSite, n)
	for i := range sites {
		sites[i] = mobility.APSite{
			Pos:         geo.Point{X: 10 + float64(i)*3, Y: 0},
			Channel:     channels[i%len(channels)],
			SSID:        fmt.Sprintf("lab-%d", i),
			Open:        true,
			BackhaulBps: backhaulBps,
		}
	}
	return sites
}

// indoorCfg describes a stationary-client TCP run under an explicit
// schedule.
func indoorCfg(seed int64, sites []mobility.APSite, sched []driver.Slot, singleAP bool, dur sim.Time) core.ScenarioConfig {
	preset := core.SingleChannelMultiAP
	if singleAP {
		preset = core.SingleChannelSingleAP
	}
	return core.ScenarioConfig{
		Seed:           seed,
		Duration:       dur,
		Preset:         preset,
		CustomSchedule: sched,
		Mobility:       mobility.Static(geo.Point{}),
		Sites:          sites,
	}
}

// indoorRun measures average TCP throughput for a stationary client under
// an explicit schedule.
func indoorRun(o Options, seed int64, sites []mobility.APSite, sched []driver.Slot, singleAP bool, dur sim.Time) core.Result {
	return core.Run(indoorCfg(seed, sites, sched, singleAP, dur))
}

// Figure7 reproduces the indoor experiment: average TCP throughput as a
// function of the percentage of the 400 ms period spent on the primary
// channel (the rest split across the two other orthogonal channels).
func Figure7(o Options) Figure {
	fig := Figure{
		ID:     "fig7",
		Title:  "TCP throughput vs fraction of time on the primary channel (D=400ms)",
		XLabel: "% of time on primary channel",
		YLabel: "average throughput (Kb/s)",
	}
	s := Series{Name: "throughput"}
	sites := indoorSites(1, []dot11.Channel{dot11.Channel6}, 5e6)
	dur := o.dur(2*time.Minute, 20*time.Second)
	var scheds [][]driver.Slot
	for pct := 10; pct <= 100; pct += 10 {
		var sched []driver.Slot
		if pct == 100 {
			sched = []driver.Slot{{Channel: dot11.Channel6}}
		} else {
			on := time.Duration(pct) * 4 * time.Millisecond
			off := (400*time.Millisecond - on) / 2
			sched = []driver.Slot{
				{Channel: dot11.Channel6, Duration: on},
				{Channel: dot11.Channel1, Duration: off},
				{Channel: dot11.Channel11, Duration: off},
			}
		}
		s.X = append(s.X, float64(pct))
		scheds = append(scheds, sched)
	}
	s.Y = meanThroughputSweep(o, "fig7", sites, scheds, dur)
	fig.Series = append(fig.Series, s)
	return fig
}

// Figure8 reproduces the absolute-dwell experiment: average TCP throughput
// when the client cycles three channels spending x ms on each — throughput
// is non-monotonic in x because long absences trip TCP's RTO.
func Figure8(o Options) Figure {
	fig := Figure{
		ID:     "fig8",
		Title:  "TCP throughput vs absolute per-channel dwell (3 equal channels)",
		XLabel: "time spent on each channel (ms)",
		YLabel: "average throughput (Kb/s)",
	}
	s := Series{Name: "throughput"}
	sites := indoorSites(1, []dot11.Channel{dot11.Channel6}, 5e6)
	dur := o.dur(2*time.Minute, 20*time.Second)
	var scheds [][]driver.Slot
	for _, ms := range []int{33, 66, 100, 133, 200, 266, 333, 400} {
		dwell := time.Duration(ms) * time.Millisecond
		sched := []driver.Slot{
			{Channel: dot11.Channel6, Duration: dwell},
			{Channel: dot11.Channel1, Duration: dwell},
			{Channel: dot11.Channel11, Duration: dwell},
		}
		s.X = append(s.X, float64(ms))
		scheds = append(scheds, sched)
	}
	s.Y = meanThroughputSweep(o, "fig8", sites, scheds, dur)
	fig.Series = append(fig.Series, s)
	return fig
}

// meanThroughputSweep measures each schedule's seed-averaged throughput
// (Kb/s) in one sharded sweep; averaging over seeds smooths TCP-timeout
// resonance effects. Results are in schedule order.
func meanThroughputSweep(o Options, id string, sites []mobility.APSite, scheds [][]driver.Slot, dur sim.Time) []float64 {
	seeds := o.n(3, 2)
	var cfgs []core.ScenarioConfig
	for _, sched := range scheds {
		for i := 0; i < seeds; i++ {
			cfgs = append(cfgs, indoorCfg(o.seed()+int64(i)*97, sites, sched, false, dur))
		}
	}
	results := runConfigs(o, id, cfgs)
	means := make([]float64, len(scheds))
	for si := range scheds {
		total := 0.0
		for i := 0; i < seeds; i++ {
			res := results[si*seeds+i]
			total += float64(res.BytesReceived) * 8 / 1000 / dur.Seconds()
		}
		means[si] = total / float64(seeds)
	}
	return means
}

// Table1 reproduces the channel-switch latency microbenchmark: the time to
// send a PSM frame to each associated AP on the old channel, perform the
// hardware reset, and send a PS-Poll to each associated AP on the new
// channel, as a function of the number of interfaces.
func Table1(o Options) Table {
	t := Table{
		ID:      "table1",
		Title:   "Channel switching latency (ms) of the Spider driver",
		Columns: []string{"num. of interfaces", "mean (ms)", "std dev (ms)"},
	}
	trials := o.n(200, 20)
	jobs := make([]job[[]float64], 5)
	for k := 0; k <= 4; k++ {
		k := k
		jobs[k] = job[[]float64]{
			id: fmt.Sprintf("table1#k=%d", k),
			fn: func() []float64 { return measureSwitchLatency(o.seed()+int64(k), k, trials) },
		}
	}
	for k, samples := range mapJobs(o, jobs) {
		sum := stats.Summarize(samples)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.Std),
		})
	}
	return t
}

// measureSwitchLatency performs the paper's switch sequence directly at
// the PHY: k serialized PSM frames on the old channel, a hardware reset,
// then k PS-Polls on the new channel; it returns per-switch latencies in
// milliseconds.
func measureSwitchLatency(seed int64, k, trials int) []float64 {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	medium := phy.NewMedium(eng, rng.Stream("phy"), params)
	client := medium.NewRadio(dot11.MAC(1), func() geo.Point { return geo.Point{} })
	// k peer APs on each side of the switch.
	for i := 0; i < k; i++ {
		old := medium.NewRadio(dot11.MAC(uint32(100+i)), func() geo.Point { return geo.Point{X: 5} })
		old.SetChannel(dot11.Channel1, nil)
		old.SetReceiver(func(dot11.Frame, phy.RxInfo) {})
		new := medium.NewRadio(dot11.MAC(uint32(200+i)), func() geo.Point { return geo.Point{X: 5} })
		new.SetChannel(dot11.Channel11, nil)
		new.SetReceiver(func(dot11.Frame, phy.RxInfo) {})
	}
	client.SetChannel(dot11.Channel1, nil)
	eng.Run(100 * time.Millisecond)

	var samples []float64
	from, to := dot11.Channel1, dot11.Channel11
	fromBase, toBase := uint32(100), uint32(200)
	for trial := 0; trial < trials; trial++ {
		start := eng.Now()
		var finish sim.Time
		pending := k // PSM frames outstanding
		sendPolls := func() {
			polls := k
			if polls == 0 {
				finish = eng.Now()
				return
			}
			for i := 0; i < k; i++ {
				client.Send(dot11.Frame{Type: dot11.TypePSPoll, Addr1: dot11.MAC(toBase + uint32(i)), Addr3: dot11.MAC(toBase + uint32(i))}, func(bool) {
					polls--
					if polls == 0 {
						finish = eng.Now()
					}
				})
			}
		}
		reset := func() { client.SetChannel(to, sendPolls) }
		if k == 0 {
			reset()
		} else {
			for i := 0; i < k; i++ {
				client.Send(dot11.Frame{Type: dot11.TypeNullData, PowerMgmt: true, Addr1: dot11.MAC(fromBase + uint32(i)), Addr3: dot11.MAC(fromBase + uint32(i))}, func(bool) {
					pending--
					if pending == 0 {
						reset()
					}
				})
			}
		}
		eng.Run(eng.Now() + time.Second)
		if finish > start {
			samples = append(samples, (finish-start).Seconds()*1000)
		}
		from, to = to, from
		fromBase, toBase = toBase, fromBase
	}
	return samples
}

// Figure10 reproduces the throughput microbenchmark: mean aggregate
// throughput versus per-AP backhaul bandwidth for five configurations.
func Figure10(o Options) Figure {
	fig := Figure{
		ID:     "fig10",
		Title:  "Aggregate throughput vs backhaul bandwidth per AP",
		XLabel: "backhaul bandwidth per AP (Mbps)",
		YLabel: "average throughput (KBps)",
	}
	dur := o.dur(time.Minute, 15*time.Second)
	bws := []float64{0.5e6, 1e6, 1.5e6, 2e6, 2.5e6, 3e6, 4e6, 5e6}
	if o.scale() < 1 {
		bws = []float64{0.5e6, 2e6, 5e6}
	}
	kbps := func(res core.Result) float64 {
		return float64(res.BytesReceived) / 1024 / dur.Seconds()
	}
	oneStock := Series{Name: "one card, stock"}
	twoStock := Series{Name: "two cards, stock"}
	spider100 := Series{Name: "Spider, (100,0,0)"}
	spider5050 := Series{Name: "Spider, (50,0,50)"}
	spider100100 := Series{Name: "Spider, (100,0,100)"}
	// Five independent runs per backhaul point, executed as one sweep:
	// one stock card (reused for the two-card sum), the second card on an
	// orthogonal channel, and three Spider schedules.
	const runsPer = 5
	var cfgs []core.ScenarioConfig
	for _, bw := range bws {
		twoChan := indoorSites(2, []dot11.Channel{dot11.Channel1, dot11.Channel11}, bw)
		cfgs = append(cfgs,
			// One card, stock driver: a single AP on channel 1.
			indoorCfg(o.seed(), indoorSites(1, []dot11.Channel{dot11.Channel1}, bw),
				[]driver.Slot{{Channel: dot11.Channel1}}, true, dur),
			// Two physical cards: two independent dedicated radios;
			// modelled as the sum of two independent single-card runs on
			// orthogonal channels (no shared airtime between channels).
			indoorCfg(o.seed()+1, indoorSites(1, []dot11.Channel{dot11.Channel11}, bw),
				[]driver.Slot{{Channel: dot11.Channel11}}, true, dur),
			// Spider on one channel with two APs.
			indoorCfg(o.seed(), indoorSites(2, []dot11.Channel{dot11.Channel1}, bw),
				[]driver.Slot{{Channel: dot11.Channel1}}, false, dur),
			// Spider across two channels, 50 ms and 100 ms dwells.
			indoorCfg(o.seed(), twoChan, []driver.Slot{
				{Channel: dot11.Channel1, Duration: 50 * time.Millisecond},
				{Channel: dot11.Channel11, Duration: 50 * time.Millisecond},
			}, false, dur),
			indoorCfg(o.seed(), twoChan, []driver.Slot{
				{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
				{Channel: dot11.Channel11, Duration: 100 * time.Millisecond},
			}, false, dur))
	}
	results := runConfigs(o, "fig10", cfgs)
	for bi, bw := range bws {
		x := bw / 1e6
		one, oneB := results[bi*runsPer], results[bi*runsPer+1]
		sp1, sp50, sp100 := results[bi*runsPer+2], results[bi*runsPer+3], results[bi*runsPer+4]
		oneStock.X = append(oneStock.X, x)
		oneStock.Y = append(oneStock.Y, kbps(one))
		twoStock.X = append(twoStock.X, x)
		twoStock.Y = append(twoStock.Y, kbps(one)+kbps(oneB))
		spider100.X = append(spider100.X, x)
		spider100.Y = append(spider100.Y, kbps(sp1))
		spider5050.X = append(spider5050.X, x)
		spider5050.Y = append(spider5050.Y, kbps(sp50))
		spider100100.X = append(spider100100.X, x)
		spider100100.Y = append(spider100100.Y, kbps(sp100))
	}
	fig.Series = []Series{oneStock, twoStock, spider100, spider5050, spider100100}
	return fig
}
