package experiments

import (
	"testing"
	"time"

	"spider/internal/chaos"
	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/fleet"
	"spider/internal/geo"
	"spider/internal/mobility"
	"spider/internal/sim"
)

// fig5Output renders Figure 5 (join success by schedule, the experiment
// exercising the largest fleet sweep) through a pool with the given worker
// count.
func fig5Output(workers int) string {
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	o := Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("fig5")}
	f := Figure5(o)
	return f.Render() + "\n" + f.CSV()
}

// TestWorkerCountInvariance is the determinism regression test: the same
// experiment run inline (no fleet), with one worker, and with eight
// workers must produce byte-identical rendered and CSV output. Jobs carry
// their own seeds and results merge in job order, so the worker count must
// never leak into results.
func TestWorkerCountInvariance(t *testing.T) {
	inline := func() string {
		f := Figure5(Options{Seed: 1, Scale: 0.05})
		return f.Render() + "\n" + f.CSV()
	}()
	if w1 := fig5Output(1); w1 != inline {
		t.Errorf("workers=1 differs from inline run:\n--- inline ---\n%s\n--- workers=1 ---\n%s", inline, w1)
	}
	if w8 := fig5Output(8); w8 != inline {
		t.Errorf("workers=8 differs from inline run:\n--- inline ---\n%s\n--- workers=8 ---\n%s", inline, w8)
	}
}

// TestOptionsKeyDistinct: cache keys must differ whenever any input the
// result depends on differs — otherwise one experiment's cached result
// could be served for another configuration.
func TestOptionsKeyDistinct(t *testing.T) {
	keys := map[string]string{}
	for _, tc := range []struct {
		label string
		o     Options
		id    string
	}{
		{"base", Options{Seed: 1, Scale: 1}, "townstudy"},
		{"other id", Options{Seed: 1, Scale: 1}, "fig5"},
		{"other seed", Options{Seed: 2, Scale: 1}, "townstudy"},
		{"other scale", Options{Seed: 1, Scale: 0.25}, "townstudy"},
	} {
		k := tc.o.Key(tc.id)
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %q and %q: %q", prev, tc.label, k)
		}
		keys[k] = tc.label
	}
	// Zero values normalize to the same defaults the computation uses, so
	// the default and its explicit spelling share one cache slot.
	if (Options{}).Key("townstudy") != (Options{Seed: 1, Scale: 1}).Key("townstudy") {
		t.Error("defaulted options keyed differently from their explicit form")
	}
	// The fleet handle must never be part of the key: the same work on a
	// different pool is still the same work.
	a := Options{Seed: 1, Scale: 1}
	b := a
	pool := fleet.New(fleet.Config{Workers: 1})
	defer pool.Close()
	b.Fleet = pool.Group("x")
	if a.Key("townstudy") != b.Key("townstudy") {
		t.Error("fleet handle leaked into the cache key")
	}
}

// TestRepeatedRunIdentical guards the simulation stack's reproducibility:
// two same-seed runs must agree bit for bit. This fails if map iteration
// order anywhere feeds RNG consumption, event scheduling, or output order.
func TestRepeatedRunIdentical(t *testing.T) {
	a := fig5Output(4)
	b := fig5Output(4)
	if a != b {
		t.Errorf("same-seed runs differ:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
}

// miniChaosSweep is a cut-down fault-intensity sweep: a short two-AP road
// drive run fault-free and under a seeded crash/DHCP/noise plan, rendered
// through the chaos table. It exists so the byte-identity checks below
// stay fast enough for the -race CI smoke job.
func miniChaosSweep(o Options) string {
	sec := sim.Time(time.Second)
	plan := chaos.Plan{
		Events: []chaos.Event{{At: 20 * sec, Kind: chaos.APCrash, AP: 0, Duration: 8 * sec}},
		Procs: []chaos.Process{
			{Kind: chaos.DHCPSilence, Mean: 25 * sec, Duration: 5 * sec, AP: chaos.RandomAP},
			{Kind: chaos.NoiseBurst, Mean: 30 * sec, Duration: 3 * sec, Channel: dot11.Channel1, Loss: 0.4},
		},
	}
	var sites []mobility.APSite
	for i := 0; i < 2; i++ {
		sites = append(sites, mobility.APSite{
			Pos: geo.Point{X: 150 + float64(i)*200, Y: 0}, Channel: dot11.Channel1,
			SSID: "mini-" + string(rune('a'+i)), Open: true, BackhaulBps: 2e6,
		})
	}
	model := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 700, Y: 0}}, 10, false)
	cfgs := make([]core.ScenarioConfig, 2)
	for i := range cfgs {
		cfgs[i] = core.ScenarioConfig{
			Seed: 42, Duration: 70 * time.Second, Preset: core.SingleChannelMultiAP,
			PrimaryChannel: dot11.Channel1, Mobility: model, Sites: sites,
		}
	}
	cfgs[1].Chaos = &plan
	cr := &ChaosResults{
		Duration:    70 * sec,
		Intensities: []float64{0, 1},
		Results:     runConfigsHealth(o, "minichaos", cfgs),
		Hashes:      []string{"", plan.Hash()},
	}
	t := ChaosTable(cr)
	return t.Render() + "\n" + t.CSV() + "\n" + ChaosRecoveryFigure(cr).Render()
}

// TestChaosWorkerCountInvariance extends the determinism regression to
// fault-injected runs: identical (seed, plan) sweeps must render byte-
// identically inline, at one worker, and at eight workers. Chaos draws on
// its own RNG stream and processes re-arm in event-time order, so fault
// schedules cannot depend on execution interleaving.
func TestChaosWorkerCountInvariance(t *testing.T) {
	withPool := func(workers int) string {
		pool := fleet.New(fleet.Config{Workers: workers})
		defer pool.Close()
		return miniChaosSweep(Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("chaos")})
	}
	inline := miniChaosSweep(Options{Seed: 1, Scale: 0.05})
	if w1 := withPool(1); w1 != inline {
		t.Errorf("workers=1 differs from inline run:\n--- inline ---\n%s\n--- workers=1 ---\n%s", inline, w1)
	}
	if w8 := withPool(8); w8 != inline {
		t.Errorf("workers=8 differs from inline run:\n--- inline ---\n%s\n--- workers=8 ---\n%s", inline, w8)
	}
}

// TestChaosRepeatedRunIdentical: two identical chaos sweeps on the same
// pool size must agree bit for bit, including fault counts and recovery
// CDFs.
func TestChaosRepeatedRunIdentical(t *testing.T) {
	run := func() string {
		pool := fleet.New(fleet.Config{Workers: 4})
		defer pool.Close()
		return miniChaosSweep(Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("chaos")})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed chaos runs differ:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
}

// TestChaosPlanHashKeysCache: the chaos study's cache key must change when
// the fault plan changes, even at identical (seed, scale).
func TestChaosPlanHashKeysCache(t *testing.T) {
	o := Options{Seed: 1, Scale: 1}
	a := chaosPlan(1)
	b := chaosPlan(2)
	if a.Hash() == b.Hash() {
		t.Fatal("different intensities hash identically")
	}
	keyA := o.Key("chaos") + "|plans=" + a.Hash()
	keyB := o.Key("chaos") + "|plans=" + b.Hash()
	if keyA == keyB {
		t.Fatal("plan hash does not differentiate cache keys")
	}
}
