package experiments

import (
	"testing"

	"spider/internal/fleet"
)

// fig5Output renders Figure 5 (join success by schedule, the experiment
// exercising the largest fleet sweep) through a pool with the given worker
// count.
func fig5Output(workers int) string {
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	o := Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("fig5")}
	f := Figure5(o)
	return f.Render() + "\n" + f.CSV()
}

// TestWorkerCountInvariance is the determinism regression test: the same
// experiment run inline (no fleet), with one worker, and with eight
// workers must produce byte-identical rendered and CSV output. Jobs carry
// their own seeds and results merge in job order, so the worker count must
// never leak into results.
func TestWorkerCountInvariance(t *testing.T) {
	inline := func() string {
		f := Figure5(Options{Seed: 1, Scale: 0.05})
		return f.Render() + "\n" + f.CSV()
	}()
	if w1 := fig5Output(1); w1 != inline {
		t.Errorf("workers=1 differs from inline run:\n--- inline ---\n%s\n--- workers=1 ---\n%s", inline, w1)
	}
	if w8 := fig5Output(8); w8 != inline {
		t.Errorf("workers=8 differs from inline run:\n--- inline ---\n%s\n--- workers=8 ---\n%s", inline, w8)
	}
}

// TestOptionsKeyDistinct: cache keys must differ whenever any input the
// result depends on differs — otherwise one experiment's cached result
// could be served for another configuration.
func TestOptionsKeyDistinct(t *testing.T) {
	keys := map[string]string{}
	for _, tc := range []struct {
		label string
		o     Options
		id    string
	}{
		{"base", Options{Seed: 1, Scale: 1}, "townstudy"},
		{"other id", Options{Seed: 1, Scale: 1}, "fig5"},
		{"other seed", Options{Seed: 2, Scale: 1}, "townstudy"},
		{"other scale", Options{Seed: 1, Scale: 0.25}, "townstudy"},
	} {
		k := tc.o.Key(tc.id)
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %q and %q: %q", prev, tc.label, k)
		}
		keys[k] = tc.label
	}
	// Zero values normalize to the same defaults the computation uses, so
	// the default and its explicit spelling share one cache slot.
	if (Options{}).Key("townstudy") != (Options{Seed: 1, Scale: 1}).Key("townstudy") {
		t.Error("defaulted options keyed differently from their explicit form")
	}
	// The fleet handle must never be part of the key: the same work on a
	// different pool is still the same work.
	a := Options{Seed: 1, Scale: 1}
	b := a
	pool := fleet.New(fleet.Config{Workers: 1})
	defer pool.Close()
	b.Fleet = pool.Group("x")
	if a.Key("townstudy") != b.Key("townstudy") {
		t.Error("fleet handle leaked into the cache key")
	}
}

// TestRepeatedRunIdentical guards the simulation stack's reproducibility:
// two same-seed runs must agree bit for bit. This fails if map iteration
// order anywhere feeds RNG consumption, event scheduling, or output order.
func TestRepeatedRunIdentical(t *testing.T) {
	a := fig5Output(4)
	b := fig5Output(4)
	if a != b {
		t.Errorf("same-seed runs differ:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
}
