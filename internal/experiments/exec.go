package experiments

import (
	"context"
	"fmt"

	"spider/internal/core"
	"spider/internal/fleet"
)

// This file routes experiment work through the fleet engine. Every helper
// preserves the sequential contract: job i's inputs are computed exactly
// as the pre-fleet loops computed iteration i, and results come back in
// job order, so parallel output is byte-identical to an inline run.

// job is one deferred computation with a telemetry id.
type job[T any] struct {
	id string
	fn func() T
}

// mapJobs executes jobs in order-preserving fashion: on o.Fleet when set,
// inline otherwise. A job failure (panic in a simulation run) aborts the
// experiment by re-panicking with the fleet's typed sweep report, which
// callers like spider-bench catch per experiment.
func mapJobs[T any](o Options, jobs []job[T]) []T {
	out := make([]T, len(jobs))
	if o.Fleet == nil {
		for i, j := range jobs {
			out[i] = j.fn()
		}
		return out
	}
	fjobs := make([]fleet.Job, len(jobs))
	for i, j := range jobs {
		fn := j.fn
		fjobs[i] = fleet.Job{ID: j.id, Run: func() (any, error) { return fn(), nil }}
	}
	results, err := o.Fleet.Map(context.Background(), fjobs)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		out[i] = r.Value.(T)
	}
	return out
}

// runConfigs executes scenario configs as one sharded sweep, returning
// results in config order. Each config must be self-contained; shared
// Timers pointers are copied so concurrent runs never alias.
func runConfigs(o Options, id string, cfgs []core.ScenarioConfig) []core.Result {
	jobs := make([]job[core.Result], len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		if cfg.Timers != nil {
			t := *cfg.Timers
			cfg.Timers = &t
		}
		label := fmt.Sprintf("%s#%d", id, i)
		jobs[i] = job[core.Result]{
			id: label,
			fn: func() core.Result {
				rec := o.recorder()
				cfg.Obs = rec
				tel := o.rollup()
				cfg.Telemetry = tel
				r := core.Run(cfg)
				o.collect(label, rec)
				o.collectRollups(label, tel)
				return r
			},
		}
	}
	return mapJobs(o, jobs)
}

// runConfigsHealth is runConfigs plus per-job chaos-health telemetry:
// every completed run folds its fault and recovery counters into the
// fleet group, so -progress shows chaos-run health while the sweep is
// still executing. The reported totals are additive, so worker count and
// completion order never change the final numbers.
func runConfigsHealth(o Options, id string, cfgs []core.ScenarioConfig) []core.Result {
	jobs := make([]job[core.Result], len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		if cfg.Timers != nil {
			t := *cfg.Timers
			cfg.Timers = &t
		}
		label := fmt.Sprintf("%s#%d", id, i)
		jobs[i] = job[core.Result]{
			id: label,
			fn: func() core.Result {
				rec := o.recorder()
				cfg.Obs = rec
				tel := o.rollup()
				cfg.Telemetry = tel
				r := core.Run(cfg)
				o.collect(label, rec)
				o.collectRollups(label, tel)
				if o.Fleet != nil {
					o.Fleet.AddHealth(fleet.Health{
						Faults:     int64(r.Chaos.Injected),
						Recoveries: int64(len(r.Recoveries)),
						LinkDrops:  int64(r.LinkDowns),
					})
				}
				return r
			},
		}
	}
	return mapJobs(o, jobs)
}

// memo caches compute under the experiment's canonical key when a fleet is
// attached (single-flight across concurrent experiments), and computes
// inline otherwise.
func memo[T any](o Options, id string, compute func() T) T {
	return memoKey(o, o.Key(id), compute)
}

// memoKey is memo with an explicit cache key, for experiments whose
// results depend on more than (id, seed, scale) — the chaos study keys
// on its fault-plan hash so a cached result can never mask a plan change.
func memoKey[T any](o Options, key string, compute func() T) T {
	if o.Fleet == nil {
		return compute()
	}
	v, _, err := o.Fleet.Do(key, func() (any, error) { return compute(), nil })
	if err != nil {
		panic(err)
	}
	return v.(T)
}
