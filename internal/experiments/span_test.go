package experiments

import (
	"bytes"
	"testing"

	"spider/internal/core"
	"spider/internal/fleet"
	"spider/internal/obs"
)

// populationSpanJSONL runs the population study on a fresh pool with the
// given worker count and returns the merged span JSONL. Fresh pool per
// call for the same reason as chaosEventJSONL: the fleet result cache
// could otherwise satisfy the memoized study without re-running its jobs,
// leaving the collector empty.
func populationSpanJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	col := obs.NewCollector()
	o := Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("population"), Events: col}
	PopulationStudy(o)
	var buf bytes.Buffer
	if err := col.WriteSpansJSONL(&buf); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no spans collected")
	}
	return buf.Bytes()
}

// TestSpanStreamWorkerInvariance extends the worker-invariance contract
// to spans: the merged span JSONL for the same (seed, scenario) must be
// byte-identical at 1, 4, and 16 workers. Span IDs derive from (client,
// seq), never randomness or scheduling, and the collector exports runs in
// sorted label order, so worker count cannot leak into the artifact.
func TestSpanStreamWorkerInvariance(t *testing.T) {
	base := populationSpanJSONL(t, 1)
	for _, w := range []int{4, 16} {
		if got := populationSpanJSONL(t, w); !bytes.Equal(got, base) {
			t.Errorf("span JSONL at workers=%d differs from workers=1", w)
		}
	}
}

// TestSpanStreamRepeatStable pins repeat-run determinism on one worker
// count: two collections of the same study are byte-identical.
func TestSpanStreamRepeatStable(t *testing.T) {
	a := populationSpanJSONL(t, 4)
	b := populationSpanJSONL(t, 4)
	if !bytes.Equal(a, b) {
		t.Error("span JSONL differs between repeat runs")
	}
}

// TestSpanTreeWellFormed checks structural invariants over population
// rungs: every span closes with End >= Start, every Parent resolves,
// children lie inside their parent's interval, and the join pipeline's
// child phases sum exactly — integer nanoseconds, no tolerance — to the
// join root's duration.
func TestSpanTreeWellFormed(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.05}
	joins := 0
	for _, n := range []int{1, 8} {
		world, clients := PopulationScenario(o, n)
		rec := obs.NewRecorder()
		world.Obs = rec
		core.RunPopulation(world, clients)
		spans := rec.Spans()
		if len(spans) == 0 {
			t.Fatalf("n=%d: no spans", n)
		}
		byID := map[obs.SpanID]obs.Span{}
		for _, s := range spans {
			if s.Open() || s.End < s.Start {
				t.Fatalf("n=%d: span %d (%s) not closed properly: [%d,%d]", n, s.ID, s.Name, s.Start, s.End)
			}
			byID[s.ID] = s
		}
		childSum := map[obs.SpanID]int64{}
		for _, s := range spans {
			if s.Parent == 0 {
				continue
			}
			p, ok := byID[s.Parent]
			if !ok {
				t.Fatalf("n=%d: span %d (%s) has unresolved parent %d", n, s.ID, s.Name, s.Parent)
			}
			if s.Start < p.Start || s.End > p.End {
				t.Fatalf("n=%d: child %d (%s) [%d,%d] escapes parent %d (%s) [%d,%d]",
					n, s.ID, s.Name, s.Start, s.End, p.ID, p.Name, p.Start, p.End)
			}
			if p.Name == "join" {
				childSum[p.ID] += int64(s.Duration())
			}
		}
		for _, s := range spans {
			if s.Name != "join" {
				continue
			}
			joins++
			if childSum[s.ID] != int64(s.Duration()) {
				t.Errorf("n=%d: join %d phase sum %d != duration %d", n, s.ID, childSum[s.ID], s.Duration())
			}
		}
	}
	if joins == 0 {
		t.Fatal("no join spans validated")
	}
}
