package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// walRecordLimit bounds one record's payload. Anything larger than this
// in the length header is corruption, not a big intent — treat it as a
// torn tail rather than attempting a gigabyte allocation.
const walRecordLimit = 16 << 20

// WAL is the write-ahead intent log: consecutive records of
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload JSON]
//
// appended with one fsync per record, strictly before the intent is
// applied or acknowledged. The format is deliberately dumb: recovery
// needs to make exactly one decision — "is this record whole?" — and a
// failed check anywhere means everything from that offset on was never
// acknowledged, so truncating it loses nothing a client was promised.
type WAL struct {
	f    *os.File
	path string
	buf  []byte
}

// RecoveryInfo reports what OpenWAL found on disk.
type RecoveryInfo struct {
	// Records is the number of intact records recovered.
	Records int
	// TruncatedBytes is the size of the torn tail discarded (0 = clean).
	TruncatedBytes int64
}

// OpenWAL opens (creating if absent) the log at path, scans it, repairs
// a torn tail by truncating to the last intact record, and returns the
// recovered intents in append order. A torn tail is an expected artifact
// of dying mid-append — never an error. Genuine I/O errors are.
func OpenWAL(path string) (*WAL, []Intent, RecoveryInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	intents, good, info, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, RecoveryInfo{}, err
	}
	if info.TruncatedBytes > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, RecoveryInfo{}, fmt.Errorf("serve: truncating torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, RecoveryInfo{}, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, RecoveryInfo{}, err
	}
	return &WAL{f: f, path: path}, intents, info, nil
}

// scanWAL reads every intact record and reports the offset of the first
// byte that is not part of one.
func scanWAL(f *os.File) (intents []Intent, good int64, info RecoveryInfo, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, info, err
	}
	if _, err = f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, info, err
	}
	r := io.Reader(f)
	var hdr [8]byte
	for good < size {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // short header: torn
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > walRecordLimit || good+8+int64(n) > size {
			break // absurd length or runs past EOF: torn
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or interleaved torn write
		}
		var in Intent
		if err := json.Unmarshal(payload, &in); err != nil {
			break // checksummed garbage can only come from our own bug,
			// but refusing to apply it beats crashing the daemon
		}
		intents = append(intents, in)
		good += 8 + int64(n)
		info.Records++
	}
	info.TruncatedBytes = size - good
	return intents, good, info, nil
}

// Append encodes, writes, and fsyncs one intent. The intent is durable
// when Append returns — the contract every acknowledgement rests on.
func (w *WAL) Append(in Intent) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	if len(payload) > walRecordLimit {
		return fmt.Errorf("serve: intent %d encodes to %d bytes (limit %d)", in.Seq, len(payload), walRecordLimit)
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }
