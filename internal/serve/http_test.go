package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spider/internal/obs"
	"spider/internal/sim"
)

// startDaemon boots a paced daemon over a fresh corridor world and
// returns it with its HTTP test server. Pacing keeps the world alive
// for the duration of the test instead of sprinting to the horizon.
func startDaemon(t *testing.T, cfg DaemonConfig) (*Daemon, *httptest.Server) {
	t.Helper()
	srv, err := Open(t.TempDir(), corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(srv, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go d.Run(ctx)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		d.Wait()
	})
	return d, ts
}

func TestHTTPStatusAndIntentFlow(t *testing.T) {
	_, ts := startDaemon(t, DaemonConfig{
		Quantum: sim.Time(100 * time.Millisecond),
		Pace:    10, // 1s virtual per 100ms wall
	})

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ConfigHash == "" || st.Clients != 1 {
		t.Fatalf("status = %+v", st)
	}

	// Durably admit a client two virtual seconds out.
	body := `{"kind":"add-client","after_ns":2000000000,` +
		`"client":{"id":5,"route":{"points":[{"X":350,"Y":5}]}}}`
	resp, err = http.Post(ts.URL+"/v1/intents", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var in Intent
	if err := json.NewDecoder(resp.Body).Decode(&in); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || in.Kind != IntentAddClient || in.Seq != 0 {
		t.Fatalf("intent response %d: %+v", resp.StatusCode, in)
	}
	if in.ApplyAtNS < 2000000000 {
		t.Fatalf("apply_at_ns = %d, want >= 2s", in.ApplyAtNS)
	}

	// Malformed payloads are 4xx, not accepted.
	resp, _ = http.Post(ts.URL+"/v1/intents", "application/json", strings.NewReader(`{"kind":"add-client"}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid intent: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/v1/intents", "application/json", strings.NewReader(`not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Snapshot on demand.
	resp, err = http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wait until the intent has applied, then confirm via status.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.AppliedIntents >= 1 && st.Clients == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intent never applied: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHTTPEventStream(t *testing.T) {
	_, ts := startDaemon(t, DaemonConfig{
		Quantum: sim.Time(200 * time.Millisecond),
		Pace:    20,
	})
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	// The stream must yield valid events within the test budget.
	sc := bufio.NewScanner(resp.Body)
	got := 0
	for sc.Scan() && got < 5 {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		got++
	}
	if got < 5 {
		t.Fatalf("stream yielded only %d events", got)
	}
}

func TestHTTPQueueFullAnd503(t *testing.T) {
	// No loop running: the control queue never drains, so the first
	// request times out (503) and the second finds the queue full (429).
	srv, err := Open(t.TempDir(), corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewDaemon(srv, DaemonConfig{QueueLen: 1, RequestDeadline: 100 * time.Millisecond})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			first <- 0
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(30 * time.Millisecond) // let the first request occupy the queue
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if code := <-first; code != http.StatusServiceUnavailable {
		t.Fatalf("first request: status %d, want 503", code)
	}
	// Status stays lock-free and live through all of it.
	resp, err = http.Get(ts.URL + "/v1/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint blocked: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPShutdownDrains(t *testing.T) {
	d, ts := startDaemon(t, DaemonConfig{
		Quantum: sim.Time(100 * time.Millisecond),
		Pace:    10,
	})
	resp, err := http.Post(ts.URL+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := d.Wait(); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	// The drain checkpointed: a lifecycle checkpoint event exists.
	found := false
	for _, ev := range d.srv.Lifecycle().Events() {
		if ev.Kind == obs.KindServeCheckpoint {
			found = true
		}
	}
	if !found {
		t.Fatal("no checkpoint recorded during drain")
	}
}

// TestDaemonRunsToHorizon exercises the free-running path end to end:
// no pacing, a short Until, drain at the limit.
func TestDaemonRunsToHorizon(t *testing.T) {
	srv, err := Open(t.TempDir(), corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(srv, DaemonConfig{
		Quantum: sim.Time(time.Second),
		Until:   sim.Time(10 * time.Second),
	})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if srv.Now() != 10*time.Second {
		t.Fatalf("stopped at %s, want 10s", srv.Now())
	}
	st := d.status.Load()
	if !st.Draining || st.Checkpoints == 0 {
		t.Fatalf("final status %+v", st)
	}
}
