package serve

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func testIntents(n int) []Intent {
	out := make([]Intent, n)
	for i := range out {
		out[i] = Intent{
			Seq:          uint64(i),
			ApplyAtNS:    int64(i) * 1e9,
			Kind:         IntentStartFlow,
			TargetClient: i,
			FlowBytes:    int64(1000 + i),
		}
	}
	return out
}

func writeWAL(t *testing.T, path string, intents []Intent) {
	t.Helper()
	w, recovered, info, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("fresh WAL not empty: %d records, %d torn bytes", len(recovered), info.TruncatedBytes)
	}
	for _, in := range intents {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	want := testIntents(7)
	writeWAL(t, path, want)

	w, got, info, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", info.TruncatedBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Appending after recovery extends the same log.
	extra := Intent{Seq: 7, Kind: IntentStopFlow, ApplyAtNS: 9e9}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, got, _, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[7] != extra {
		t.Fatalf("post-recovery append lost: %d records", len(got))
	}
}

// TestWALTornTailTruncation cuts the log at every byte boundary of the
// final record and demands the intact prefix back, never an error — a
// torn tail is the expected artifact of dying mid-append.
func TestWALTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	want := testIntents(3)
	writeWAL(t, ref, want)
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last record's start: scan two records forward.
	off := int64(0)
	for i := 0; i < 2; i++ {
		n := binary.LittleEndian.Uint32(full[off : off+4])
		off += 8 + int64(n)
	}
	for cut := off + 1; cut < int64(len(full)); cut++ {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, info, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, len(got))
		}
		if info.TruncatedBytes != cut-off {
			t.Fatalf("cut at %d: torn bytes = %d, want %d", cut, info.TruncatedBytes, cut-off)
		}
		// The file must now end exactly at the intact prefix, and stay
		// recoverable.
		w.Close()
		st, _ := os.Stat(path)
		if st.Size() != off {
			t.Fatalf("cut at %d: file size %d after repair, want %d", cut, st.Size(), off)
		}
		os.Remove(path)
	}
}

// TestWALCorruptPayload flips a byte inside the last record's payload:
// the CRC must reject it and recovery keep the prefix.
func TestWALCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	writeWAL(t, path, testIntents(3))
	b, _ := os.ReadFile(path)
	b[len(b)-2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, info, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != 2 {
		t.Fatalf("recovered %d records past corruption, want 2", len(got))
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncated bytes")
	}
}

// TestWALAbsurdLength guards the header-length sanity check: a header
// claiming a payload beyond the limit is a torn tail, not an allocation.
func TestWALAbsurdLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	writeWAL(t, path, testIntents(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], walRecordLimit+1)
	f.Write(hdr[:])
	f.Close()
	_, got, info, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || info.TruncatedBytes != 8 {
		t.Fatalf("recovered %d records, %d torn bytes; want 1, 8", len(got), info.TruncatedBytes)
	}
}
