// Package serve is the crash-safe long-running service mode: a daemon
// that owns one live core.Scenario, advances virtual time in bounded
// quanta, and accepts external inputs — add a client, inject a chaos
// plan, start or stop flows — over a small HTTP/JSON API.
//
// Durability comes from determinism, not state serialization. Every
// external input is appended to a write-ahead intent log (fsynced,
// length-prefixed, checksummed) *before* it is applied, tagged with the
// virtual time it applies at. A checkpoint is just (world-spec hash,
// seed, intent log, sim time). Restore rebuilds the world from the spec
// and replays the intents at their recorded virtual times; because the
// simulation is a pure function of (seed, spec, intent timeline), the
// resumed run regenerates obs event and span streams byte-identical to
// an uninterrupted one — the property recovery_test.go enforces at every
// possible crash point. See DESIGN.md §12.
package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipam"
	"spider/internal/mobility"
	"spider/internal/obs"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// WorldSpec is the JSON-serializable description a serve world is built
// from. It mirrors core.WorldConfig minus the process-local seams (Obs
// recorder, PCAP writer) and is the unit the config hash covers: two
// daemons with equal specs and equal intent logs compute equal worlds.
type WorldSpec struct {
	// Seed makes the whole run — and every replay of it — reproducible.
	Seed int64 `json:"seed"`
	// HorizonNS, when positive, bounds the run: the daemon stops
	// advancing (and drains) once the clock reaches it. Zero serves
	// forever.
	HorizonNS int64 `json:"horizon_ns,omitempty"`
	// Sites are the deployed APs, in chaos-target index order.
	Sites []mobility.APSite `json:"sites"`
	// AP tunes every deployed AP uniformly (zero fields default).
	AP core.APOverrides `json:"ap,omitempty"`
	// IPAM optionally declares the shared address plane.
	IPAM *ipam.Config `json:"ipam,omitempty"`
	// Clients are the clients present from time zero; more arrive later
	// as add-client intents.
	Clients []ClientSpec `json:"clients,omitempty"`
	// Telemetry tunes the streaming aggregation plane. Nil enables it
	// with package defaults (telemetry is on by default in serve mode —
	// the rollups are what /v1/rollups serves); set Disable to turn it
	// off. The field is omitempty, so pre-telemetry config hashes are
	// unchanged.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
}

// TelemetrySpec is the serializable tuning of the streaming telemetry
// plane (see internal/telemetry). Zero fields take package defaults.
type TelemetrySpec struct {
	// Disable turns the plane off entirely: no rollups, no flight
	// recorder, /v1/rollups answers 404.
	Disable bool `json:"disable,omitempty"`
	// WindowNS is the rollup window width (default 1s).
	WindowNS int64 `json:"window_ns,omitempty"`
	// MaxWindows bounds retained closed windows (0 keeps all).
	MaxWindows int `json:"max_windows,omitempty"`
	// FlightEvents / FlightSpans size the flight recorder rings
	// (defaults 4096 / 2048; negative disables a ring).
	FlightEvents int `json:"flight_events,omitempty"`
	FlightSpans  int `json:"flight_spans,omitempty"`
	// KeepClients is the flight sampling fraction (default 0.05).
	KeepClients float64 `json:"keep_clients,omitempty"`
	// SLOs replaces the default health rule set; nil keeps
	// telemetry.DefaultSLOs().
	SLOs []telemetry.SLORule `json:"slos,omitempty"`
}

// TelemetryAggregator builds the world's aggregator from the spec, or
// nil when the spec disables the plane. The aggregator is rebuilt fresh
// on every Open and refilled by intent replay, which is what makes
// post-restore rollups byte-identical to an uninterrupted run's.
func (w *WorldSpec) TelemetryAggregator() *telemetry.Aggregator {
	t := w.Telemetry
	if t != nil && t.Disable {
		return nil
	}
	cfg := telemetry.Config{Seed: w.Seed, SLOs: telemetry.DefaultSLOs()}
	if t != nil {
		cfg.Window = sim.Time(t.WindowNS)
		cfg.MaxWindows = t.MaxWindows
		cfg.FlightEvents = t.FlightEvents
		cfg.FlightSpans = t.FlightSpans
		cfg.KeepClients = t.KeepClients
		if t.SLOs != nil {
			cfg.SLOs = t.SLOs
		}
	}
	return telemetry.New(cfg)
}

// ClientSpec is the serializable client description used both in the
// world spec and inside add-client intents.
type ClientSpec struct {
	ID int `json:"id"`
	// Preset is the Spider configuration by its canonical name
	// ("multi-channel/multi-AP", "stock", ...); empty selects
	// single-channel/multi-AP (the zero preset).
	Preset string `json:"preset,omitempty"`
	// PrimaryChannel / Channels / SlotNS tune the channel schedule
	// exactly as core.ClientConfig does (zero fields default).
	PrimaryChannel int       `json:"primary_channel,omitempty"`
	Channels       []int     `json:"channels,omitempty"`
	SlotNS         int64     `json:"slot_ns,omitempty"`
	NumVIFs        int       `json:"num_vifs,omitempty"`
	FlowBytes      int64     `json:"flow_bytes,omitempty"`
	StripeBytes    int64     `json:"stripe_bytes,omitempty"`
	DisableTraffic bool      `json:"disable_traffic,omitempty"`
	StartOffsetNS  int64     `json:"start_offset_ns,omitempty"`
	Route          RouteSpec `json:"route"`
}

// RouteSpec is the serializable mobility model: one point parks the
// client (Static); two or more move it along the waypoints at SpeedMPS,
// optionally looping.
type RouteSpec struct {
	Points   []geo.Point `json:"points"`
	SpeedMPS float64     `json:"speed_mps,omitempty"`
	Loop     bool        `json:"loop,omitempty"`
}

// Model materializes the route.
func (r RouteSpec) Model() (mobility.Model, error) {
	switch {
	case len(r.Points) == 0:
		return nil, fmt.Errorf("serve: route needs at least one point")
	case len(r.Points) == 1:
		return mobility.Static(r.Points[0]), nil
	case r.SpeedMPS <= 0:
		return nil, fmt.Errorf("serve: multi-point route needs positive speed_mps")
	}
	return mobility.NewWaypoints(r.Points, r.SpeedMPS, r.Loop), nil
}

// ParsePreset resolves a preset's canonical name (core.Preset.String).
// The empty string is the zero preset.
func ParsePreset(name string) (core.Preset, error) {
	if name == "" {
		return core.SingleChannelMultiAP, nil
	}
	for p := core.SingleChannelMultiAP; ; p++ {
		s := p.String()
		if s == name {
			return p, nil
		}
		if len(s) > 7 && s[:7] == "preset-" { // ran past the defined set
			return 0, fmt.Errorf("serve: unknown preset %q", name)
		}
	}
}

// ClientConfig converts the spec into a core client config, validating
// preset and route.
func (c ClientSpec) ClientConfig() (core.ClientConfig, error) {
	preset, err := ParsePreset(c.Preset)
	if err != nil {
		return core.ClientConfig{}, err
	}
	model, err := c.Route.Model()
	if err != nil {
		return core.ClientConfig{}, fmt.Errorf("serve: client %d: %w", c.ID, err)
	}
	var channels []dot11.Channel
	for _, ch := range c.Channels {
		channels = append(channels, dot11.Channel(ch))
	}
	return core.ClientConfig{
		ID:                c.ID,
		Preset:            preset,
		PrimaryChannel:    dot11.Channel(c.PrimaryChannel),
		Channels:          channels,
		SlotDuration:      sim.Time(c.SlotNS),
		NumVIFs:           c.NumVIFs,
		FlowBytes:         c.FlowBytes,
		StripeObjectBytes: c.StripeBytes,
		DisableTraffic:    c.DisableTraffic,
		StartOffset:       sim.Time(c.StartOffsetNS),
		Mobility:          model,
	}, nil
}

// Validate checks the spec without building anything: site presence and
// every declared client's preset and route.
func (w *WorldSpec) Validate() error {
	if len(w.Sites) == 0 {
		return fmt.Errorf("serve: world spec declares no sites")
	}
	if w.HorizonNS < 0 {
		return fmt.Errorf("serve: negative horizon")
	}
	for _, c := range w.Clients {
		if _, err := c.ClientConfig(); err != nil {
			return err
		}
	}
	return nil
}

// Hash returns a stable FNV-1a digest of the spec's canonical JSON
// encoding. Snapshots record it, and restore refuses a snapshot whose
// hash disagrees with the config on disk: replaying an intent log into a
// different world would silently produce a different (but plausible)
// timeline, which is the worst possible failure mode for a durability
// story.
func (w *WorldSpec) Hash() string {
	b, err := json.Marshal(w)
	if err != nil {
		// A spec is plain data; failure to encode is a programming error.
		panic("serve: spec hash: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// WorldConfig converts the spec into a core world config wired to the
// given recorder. The configured duration is the horizon (or the core
// default when unbounded) — the serve loop steps the engine itself, so
// this only labels results.
func (w *WorldSpec) WorldConfig(rec *obs.Recorder) core.WorldConfig {
	return core.WorldConfig{
		Seed:     w.Seed,
		Duration: sim.Time(w.HorizonNS),
		Sites:    w.Sites,
		AP:       w.AP,
		IPAM:     w.IPAM,
		Obs:      rec,
	}
}
