package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spider/internal/obs"
	"spider/internal/sim"
)

// copyFile copies one state file into a fresh crash directory.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// walOffsets returns the byte offset of every record boundary in the
// log, starting with 0 and ending at len(wal).
func walOffsets(t *testing.T, wal []byte) []int64 {
	t.Helper()
	offs := []int64{0}
	off := int64(0)
	for off < int64(len(wal)) {
		n := binary.LittleEndian.Uint32(wal[off : off+4])
		off += 8 + int64(n)
		offs = append(offs, off)
	}
	if off != int64(len(wal)) {
		t.Fatalf("WAL does not end on a record boundary: %d != %d", off, len(wal))
	}
	return offs
}

// TestCrashRecoveryAtEveryWALBoundary is the PR's acceptance test: kill
// the daemon at every possible WAL durability state — after each record,
// and torn mid-record — restore, re-drive the lost remainder of the
// script, and demand the final obs event and span JSONL streams
// byte-identical to the uninterrupted reference run.
//
// "Kill" here is the strongest form: the crash directories are built
// from raw file prefixes, exactly the on-disk states a SIGKILL between
// (or inside) fsyncs leaves behind. No Close, no flush, no goodbye.
//
// This test also gates engine replacements: restore re-simulates from
// the WAL, so byte-identity of the final streams requires the scheduler
// to reproduce the original firing order exactly. It passed unchanged
// across the container/heap -> hierarchical timer wheel swap, whose
// pooled events and level cascades it exercises through the beacon
// tickers (level 1-2 ticks) and DHCP lease timers (level 3+).
func TestCrashRecoveryAtEveryWALBoundary(t *testing.T) {
	refEvs, refSpans, refRoll := referenceRun(t)
	script := testScript()

	// One complete live run produces the full WAL image.
	victim := t.TempDir()
	srv, err := Open(victim, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, srv, script, sim.Time(time.Second), testUntil)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(victim, walFile))
	if err != nil {
		t.Fatal(err)
	}
	offsets := walOffsets(t, wal)
	if len(offsets) != len(script)+1 {
		t.Fatalf("WAL has %d records, want %d", len(offsets)-1, len(script))
	}

	type cut struct {
		name   string
		bytes  int64
		intact int  // records surviving the cut
		torn   bool // expect a wal-truncated lifecycle event
	}
	var cuts []cut
	for i, off := range offsets {
		cuts = append(cuts, cut{name: fmt.Sprintf("boundary-%d", i), bytes: off, intact: i})
		// Torn tails: a few bytes into the header, and mid-payload.
		if i < len(offsets)-1 {
			cuts = append(cuts,
				cut{name: fmt.Sprintf("mid-header-%d", i), bytes: off + 5, intact: i, torn: true},
				cut{name: fmt.Sprintf("mid-payload-%d", i), bytes: (off + offsets[i+1]) / 2, intact: i, torn: true},
			)
		}
	}

	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			copyFile(t, filepath.Join(victim, configFile), filepath.Join(dir, configFile))
			if err := os.WriteFile(filepath.Join(dir, walFile), wal[:c.bytes], 0o644); err != nil {
				t.Fatal(err)
			}
			// No snapshot: the crash raced ahead of any checkpoint, so
			// restore's horizon is the last durable intent alone.
			resumed, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			if got := int(resumed.Applied()); got != c.intact {
				t.Fatalf("replayed %d intents, want %d", got, c.intact)
			}
			truncated := false
			for _, ev := range resumed.Lifecycle().Events() {
				if ev.Kind == obs.KindServeWALTruncated {
					truncated = true
				}
			}
			if truncated != c.torn {
				t.Fatalf("torn-tail event = %v, want %v", truncated, c.torn)
			}
			// The client re-submits everything never acknowledged, and
			// the world advances to the same horizon — on a different
			// quantum, which must be invisible.
			driveScript(t, resumed, script[c.intact:], sim.Time(900*time.Millisecond), testUntil)
			gotEvs, gotSpans := streams(t, resumed.Recorder())
			if !bytes.Equal(refEvs, gotEvs) {
				t.Fatalf("event stream differs after crash at %s: %d vs %d bytes",
					c.name, len(gotEvs), len(refEvs))
			}
			if !bytes.Equal(refSpans, gotSpans) {
				t.Fatalf("span stream differs after crash at %s: %d vs %d bytes",
					c.name, len(gotSpans), len(refSpans))
			}
			if gotRoll := rollupArtifacts(t, resumed); !bytes.Equal(refRoll, gotRoll) {
				t.Fatalf("rollup export differs after crash at %s: %d vs %d bytes",
					c.name, len(gotRoll), len(refRoll))
			}
		})
	}
}

// TestCrashAfterFinalCheckpoint restores from a complete WAL plus the
// final checkpoint: replay alone must reach the full horizon and already
// match the reference streams with no further driving.
func TestCrashAfterFinalCheckpoint(t *testing.T) {
	refEvs, refSpans, refRoll := referenceRun(t)

	victim := t.TempDir()
	srv, err := Open(victim, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	driveScript(t, srv, testScript(), sim.Time(time.Second), testUntil)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: no Close. Reopen the same directory cold.
	resumed, err := Open(victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Now() != testUntil {
		t.Fatalf("restored clock %s, want %s", resumed.Now(), testUntil)
	}
	gotEvs, gotSpans := streams(t, resumed.Recorder())
	if !bytes.Equal(refEvs, gotEvs) {
		t.Fatalf("checkpoint-restored event stream differs: %d vs %d bytes", len(gotEvs), len(refEvs))
	}
	if !bytes.Equal(refSpans, gotSpans) {
		t.Fatalf("checkpoint-restored span stream differs: %d vs %d bytes", len(gotSpans), len(refSpans))
	}
	if gotRoll := rollupArtifacts(t, resumed); !bytes.Equal(refRoll, gotRoll) {
		t.Fatalf("checkpoint-restored rollup export differs: %d vs %d bytes", len(gotRoll), len(refRoll))
	}
	srv.Close()
}
