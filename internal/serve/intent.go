package serve

import (
	"fmt"

	"spider/internal/chaos"
	"spider/internal/sim"
)

// Intent kinds. The set is the daemon's entire external input surface:
// if it isn't an intent, it cannot change the simulation, and therefore
// cannot break replay.
const (
	IntentAddClient   = "add-client"
	IntentInjectChaos = "inject-chaos"
	IntentStartFlow   = "start-flow"
	IntentStopFlow    = "stop-flow"
)

// Intent is one durable external input. An intent is accepted at a
// quiescent barrier (between engine steps), assigned the next sequence
// number and an absolute virtual apply time, fsynced to the WAL, and
// only then applied — so a crash can lose at most inputs that were never
// acknowledged, and replaying the log re-applies every acknowledged
// input at exactly its original virtual time.
type Intent struct {
	// Seq is the WAL sequence number (dense, starting at 0).
	Seq uint64 `json:"seq"`
	// ApplyAtNS is the absolute virtual time the intent applies at.
	ApplyAtNS int64 `json:"apply_at_ns"`
	// Kind selects the payload below.
	Kind string `json:"kind"`

	// Client is the add-client payload.
	Client *ClientSpec `json:"client,omitempty"`
	// Chaos is the inject-chaos payload (absolute virtual event times;
	// times already past clamp to the apply time).
	Chaos *chaos.Plan `json:"chaos,omitempty"`
	// TargetClient addresses start-flow / stop-flow.
	TargetClient int `json:"target_client,omitempty"`
	// FlowBytes bounds each started flow (<=0 = unbounded bulk).
	FlowBytes int64 `json:"flow_bytes,omitempty"`
}

// ApplyAt returns the apply time as a sim.Time.
func (in Intent) ApplyAt() sim.Time { return sim.Time(in.ApplyAtNS) }

// validate checks the payload shape (not world state: a start-flow for a
// client that never materializes is accepted, logged, and rejected at
// apply time — the rejection itself is then deterministic and replayable).
func (in Intent) validate() error {
	switch in.Kind {
	case IntentAddClient:
		if in.Client == nil {
			return fmt.Errorf("serve: %s intent without client spec", in.Kind)
		}
		if _, err := in.Client.ClientConfig(); err != nil {
			return err
		}
	case IntentInjectChaos:
		if in.Chaos == nil || in.Chaos.Empty() {
			return fmt.Errorf("serve: %s intent without a non-empty plan", in.Kind)
		}
	case IntentStartFlow, IntentStopFlow:
		if in.TargetClient < 0 || in.TargetClient > 65535 {
			return fmt.Errorf("serve: %s intent target %d out of range", in.Kind, in.TargetClient)
		}
	default:
		return fmt.Errorf("serve: unknown intent kind %q", in.Kind)
	}
	return nil
}
