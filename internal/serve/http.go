package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spider/internal/obs"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// DaemonConfig tunes the serve loop. Zero values pick the defaults
// noted on each field.
type DaemonConfig struct {
	// Quantum is the virtual time advanced per loop iteration — the
	// granularity at which intents are picked up and checkpoints can
	// land (default 1s virtual).
	Quantum sim.Time
	// Until, when positive, stops the daemon (drain + checkpoint) once
	// the clock reaches it; capped by the spec horizon. Zero serves
	// until the horizon, or forever if the spec has none.
	Until sim.Time
	// Pace throttles virtual progress to Pace× real time (1.0 = real
	// time, 60 = a virtual minute per wall second). 0 = free-running.
	Pace float64
	// QueueLen bounds the control queue; a full queue answers 429 with
	// Retry-After rather than stalling the loop (default 64).
	QueueLen int
	// RequestDeadline bounds how long an API request waits for the loop
	// to pick it up and answer before the handler gives up with 503
	// (default 2s wall).
	RequestDeadline time.Duration
	// StepDeadline is the wall-clock budget for one quantum; a step
	// overrunning it records a serve.stall lifecycle event (default 5s).
	StepDeadline time.Duration
	// CheckpointEvery checkpoints each time the virtual clock crosses a
	// multiple of it (default 30s virtual; negative disables).
	CheckpointEvery sim.Time
	// SubscriberBuffer bounds each event subscriber's channel; a slow
	// subscriber drops events (counted) instead of stalling the loop
	// (default 1024).
	SubscriberBuffer int
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.Quantum <= 0 {
		c.Quantum = sim.Time(time.Second)
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.RequestDeadline <= 0 {
		c.RequestDeadline = 2 * time.Second
	}
	if c.StepDeadline <= 0 {
		c.StepDeadline = 5 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = sim.Time(30 * time.Second)
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 1024
	}
	return c
}

// Status is the lock-free status cell /v1/status serves from: reading
// it never waits on the simulation loop, so liveness probes keep
// working through a stalled step.
type Status struct {
	ConfigHash     string  `json:"config_hash"`
	SimTimeNS      int64   `json:"sim_time_ns"`
	RestoredNS     int64   `json:"restored_ns"`
	HorizonNS      int64   `json:"horizon_ns,omitempty"`
	Clients        int     `json:"clients"`
	EngineQueue    int     `json:"engine_queue"`
	PendingIntents int     `json:"pending_intents"`
	AppliedIntents uint64  `json:"applied_intents"`
	NextSeq        uint64  `json:"next_seq"`
	EventsRecorded uint64  `json:"events_recorded"`
	EventsDropped  uint64  `json:"events_dropped"`
	LastStepWallNS int64   `json:"last_step_wall_ns"`
	Stalls         uint64  `json:"stalls"`
	Checkpoints    uint64  `json:"checkpoints"`
	UptimeSec      float64 `json:"uptime_sec"`
	Draining       bool    `json:"draining"`
}

// ctrlReq is one unit of work executed by the loop at a quiescent
// barrier. resp is buffered so an abandoned (timed-out) request can
// never block the loop.
type ctrlReq struct {
	do   func() (any, error)
	resp chan ctrlResp
}

type ctrlResp struct {
	v   any
	err error
}

// subscriber is one live /v1/events stream.
type subscriber struct {
	ch      chan obs.Event
	dropped uint64 // loop-side counter, read under subs.mu
}

// Daemon drives a Server on a single loop goroutine and exposes it over
// HTTP. All simulation access is funneled through the control queue, so
// intents are only ever accepted between engine steps — the invariant
// the WAL's replayability rests on.
type Daemon struct {
	srv   *Server
	cfg   DaemonConfig
	ctrl  chan ctrlReq
	done  chan struct{}
	stop  chan struct{} // closed by /v1/shutdown or Stop
	stopO sync.Once

	status atomic.Pointer[Status]
	start  time.Time

	eventsSeen atomic.Uint64
	dropped    atomic.Uint64
	stalls     atomic.Uint64
	ckpts      uint64 // loop-goroutine only
	draining   atomic.Bool

	subs   map[int]*subscriber
	subsMu sync.Mutex
	nextID int

	runErr error // set before done closes
}

// NewDaemon wraps an opened server. Call Run (usually in a goroutine)
// to start the loop, and Handler for the HTTP API.
func NewDaemon(srv *Server, cfg DaemonConfig) *Daemon {
	d := &Daemon{
		srv:   srv,
		cfg:   cfg.withDefaults(),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
		subs:  make(map[int]*subscriber),
		start: time.Now(),
	}
	d.ctrl = make(chan ctrlReq, d.cfg.QueueLen)
	// One fan-out subscriber on the deterministic recorder; registered
	// before the loop starts, so recording never races the append.
	srv.Recorder().Subscribe(func(ev obs.Event) {
		d.eventsSeen.Add(1)
		d.subsMu.Lock()
		for _, sub := range d.subs {
			select {
			case sub.ch <- ev:
			default:
				sub.dropped++
				d.dropped.Add(1)
			}
		}
		d.subsMu.Unlock()
	})
	d.publishStatus(0)
	return d
}

// Run executes the serve loop until the horizon/Until is reached, Stop
// or /v1/shutdown is called, or ctx is cancelled. On every exit path it
// drains: applies nothing new, checkpoints, and closes the WAL. Returns
// the first fatal error (WAL/checkpoint I/O), if any.
func (d *Daemon) Run(ctx context.Context) error {
	defer close(d.done)
	defer d.closeSubs()

	limit := sim.Time(d.srv.Spec().HorizonNS)
	if d.cfg.Until > 0 && (limit == 0 || d.cfg.Until < limit) {
		limit = d.cfg.Until
	}

	for {
		// Serve queued control work at the quiescent barrier.
		if stop := d.drainCtrl(ctx); stop {
			return d.shutdown()
		}

		now := d.srv.Now()
		if limit > 0 && now >= limit {
			return d.shutdown()
		}

		// Idle worlds (no scheduled events, no pending intents, nothing
		// to pace toward) block instead of spinning.
		if limit == 0 && d.srv.Scenario().Engine().Len() == 0 && d.srv.Pending() == 0 {
			if stop := d.waitCtrl(ctx); stop {
				return d.shutdown()
			}
			continue
		}

		target := now + d.cfg.Quantum
		if limit > 0 && target > limit {
			target = limit
		}
		stepStart := time.Now()
		d.srv.Advance(target)
		wall := time.Since(stepStart)
		if wall > d.cfg.StepDeadline {
			d.stalls.Add(1)
			d.srv.Lifecycle().World().Emit(obs.Event{
				At:    d.srv.Now(),
				Kind:  obs.KindServeStall,
				Value: wall.Nanoseconds(),
				Note:  fmt.Sprintf("budget %s", d.cfg.StepDeadline),
			})
		}

		if d.cfg.CheckpointEvery > 0 &&
			now/d.cfg.CheckpointEvery != d.srv.Now()/d.cfg.CheckpointEvery {
			if err := d.srv.Checkpoint(); err != nil {
				d.runErr = err
				return d.shutdown()
			}
			d.ckpts++
		}
		d.publishStatus(wall)

		if d.cfg.Pace > 0 {
			budget := time.Duration(float64(d.cfg.Quantum)/d.cfg.Pace) - wall
			if stop := d.pace(ctx, budget); stop {
				return d.shutdown()
			}
		}
	}
}

// shutdown is the single exit path: final checkpoint, WAL close.
func (d *Daemon) shutdown() error {
	d.draining.Store(true)
	if err := d.srv.Checkpoint(); err != nil && d.runErr == nil {
		d.runErr = err
	}
	d.ckpts++
	d.publishStatus(0)
	if err := d.srv.Close(); err != nil && d.runErr == nil {
		d.runErr = err
	}
	return d.runErr
}

// drainCtrl serves all queued control requests; reports whether the
// daemon should stop.
func (d *Daemon) drainCtrl(ctx context.Context) bool {
	for {
		select {
		case <-ctx.Done():
			return true
		case <-d.stop:
			return true
		case req := <-d.ctrl:
			req.run()
		default:
			return false
		}
	}
}

// waitCtrl blocks until control work, stop, or cancellation arrives.
func (d *Daemon) waitCtrl(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	case <-d.stop:
		return true
	case req := <-d.ctrl:
		req.run()
		return false
	}
}

// pace sleeps off the real-time budget while staying responsive to
// control work (the loop is at a quiescent barrier the whole time).
func (d *Daemon) pace(ctx context.Context, budget time.Duration) bool {
	if budget <= 0 {
		return false
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return true
		case <-d.stop:
			return true
		case req := <-d.ctrl:
			req.run()
		case <-timer.C:
			return false
		}
	}
}

func (r ctrlReq) run() {
	v, err := r.do()
	r.resp <- ctrlResp{v: v, err: err}
}

// Stop asks the loop to drain and exit; Wait for completion.
func (d *Daemon) Stop() { d.stopO.Do(func() { close(d.stop) }) }

// Wait blocks until the loop has exited and returns its error.
func (d *Daemon) Wait() error {
	<-d.done
	return d.runErr
}

func (d *Daemon) publishStatus(lastStep time.Duration) {
	st := &Status{
		ConfigHash:     d.srv.Hash(),
		SimTimeNS:      int64(d.srv.Now()),
		RestoredNS:     int64(d.srv.Restored()),
		HorizonNS:      d.srv.Spec().HorizonNS,
		Clients:        len(d.srv.Scenario().Clients()),
		EngineQueue:    d.srv.Scenario().Engine().Len(),
		PendingIntents: d.srv.Pending(),
		AppliedIntents: d.srv.Applied(),
		NextSeq:        d.srv.NextSeq(),
		EventsRecorded: d.eventsSeen.Load(),
		EventsDropped:  d.dropped.Load(),
		LastStepWallNS: lastStep.Nanoseconds(),
		Stalls:         d.stalls.Load(),
		Checkpoints:    d.ckpts,
		UptimeSec:      time.Since(d.start).Seconds(),
		Draining:       d.draining.Load(),
	}
	d.status.Store(st)
}

// closeSubs closes every live event stream at loop exit.
func (d *Daemon) closeSubs() {
	d.subsMu.Lock()
	defer d.subsMu.Unlock()
	for id, sub := range d.subs {
		close(sub.ch)
		delete(d.subs, id)
	}
}

// ask funnels a closure to the loop goroutine, honoring queue bounds
// and the request deadline. The closure runs at a quiescent barrier.
func (d *Daemon) ask(do func() (any, error)) (any, int, error) {
	req := ctrlReq{do: do, resp: make(chan ctrlResp, 1)}
	select {
	case d.ctrl <- req:
	default:
		return nil, http.StatusTooManyRequests, fmt.Errorf("control queue full (%d deep)", d.cfg.QueueLen)
	}
	select {
	case resp := <-req.resp:
		if resp.err != nil {
			return nil, http.StatusUnprocessableEntity, resp.err
		}
		return resp.v, http.StatusOK, nil
	case <-time.After(d.cfg.RequestDeadline):
		return nil, http.StatusServiceUnavailable, fmt.Errorf("simulation loop unresponsive for %s", d.cfg.RequestDeadline)
	case <-d.done:
		return nil, http.StatusServiceUnavailable, fmt.Errorf("daemon stopped")
	}
}

// Handler returns the HTTP API:
//
//	GET  /v1/status   — lock-free status cell (never blocks on the loop)
//	GET  /v1/metrics  — scenario metrics, Prometheus text exposition
//	GET  /v1/rollups  — closed telemetry windows + flight accounting
//	                    (?from_ns= &to_ns= &last= filter; 404 if disabled)
//	GET  /v1/events   — JSONL stream: recorded backlog, then live events
//	POST /v1/intents  — durably accept one intent (body: Intent JSON,
//	                    optional "after_ns" field for delayed apply)
//	POST /v1/snapshot — checkpoint now
//	POST /v1/shutdown — drain: checkpoint, close WAL, exit loop
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", d.handleStatus)
	mux.HandleFunc("GET /v1/metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/rollups", d.handleRollups)
	mux.HandleFunc("GET /v1/events", d.handleEvents)
	mux.HandleFunc("POST /v1/intents", d.handleIntent)
	mux.HandleFunc("POST /v1/snapshot", d.handleSnapshot)
	mux.HandleFunc("POST /v1/shutdown", d.handleShutdown)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, d.status.Load())
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Prometheus text exposition, rendered loop-side so the counters are
	// a quiescent snapshot. Line order is pinned (sorted by type, name)
	// so two scrapes of the same state are byte-identical.
	v, code, err := d.ask(func() (any, error) {
		return d.srv.Recorder().Metrics().RenderPrometheus(), nil
	})
	if err != nil {
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, v.(string))
}

// rollupsResponse is the GET /v1/rollups body.
type rollupsResponse struct {
	Windows        []telemetry.Window       `json:"windows"`
	Flight         telemetry.FlightCounters `json:"flight"`
	DroppedWindows int64                    `json:"dropped_windows,omitempty"`
}

func (d *Daemon) handleRollups(w http.ResponseWriter, r *http.Request) {
	if d.srv.Telemetry() == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("telemetry disabled by world spec"))
		return
	}
	q := r.URL.Query()
	parse := func(key string) (int64, error) {
		s := q.Get(key)
		if s == "" {
			return 0, nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad %s %q", key, s)
		}
		return v, nil
	}
	var fromNS, toNS, last int64
	var err error
	if fromNS, err = parse("from_ns"); err == nil {
		if toNS, err = parse("to_ns"); err == nil {
			last, err = parse("last")
		}
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, code, err := d.ask(func() (any, error) {
		tel := d.srv.Telemetry()
		wins := tel.Windows()
		out := make([]telemetry.Window, 0, len(wins))
		for _, win := range wins {
			if fromNS > 0 && win.EndNS <= fromNS {
				continue
			}
			if toNS > 0 && win.StartNS >= toNS {
				continue
			}
			out = append(out, win)
		}
		if last > 0 && int64(len(out)) > last {
			out = out[int64(len(out))-last:]
		}
		return rollupsResponse{
			Windows:        out,
			Flight:         tel.FlightCounters(),
			DroppedWindows: tel.DroppedWindows(),
		}, nil
	})
	if err != nil {
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// intentRequest is the POST /v1/intents body: an Intent plus the apply
// delay. Seq and ApplyAtNS are assigned by the daemon — values sent by
// the client are ignored.
type intentRequest struct {
	Intent
	AfterNS int64 `json:"after_ns,omitempty"`
}

func (d *Daemon) handleIntent(w http.ResponseWriter, r *http.Request) {
	var req intentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad intent body: %w", err))
		return
	}
	v, code, err := d.ask(func() (any, error) {
		return d.srv.Accept(req.Intent, sim.Time(req.AfterNS))
	})
	if err != nil {
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	_, code, err := d.ask(func() (any, error) {
		if err := d.srv.Checkpoint(); err != nil {
			return nil, err
		}
		d.ckpts++
		return nil, nil
	})
	if err != nil {
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sim_time_ns": d.status.Load().SimTimeNS,
	})
}

func (d *Daemon) handleShutdown(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	d.Stop()
}

func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	// Register the subscriber and snapshot the backlog in one loop-side
	// step, so the stream has no gap between backlog and live tail.
	v, code, err := d.ask(func() (any, error) {
		sub := &subscriber{ch: make(chan obs.Event, d.cfg.SubscriberBuffer)}
		d.subsMu.Lock()
		id := d.nextID
		d.nextID++
		d.subs[id] = sub
		d.subsMu.Unlock()
		return [2]any{id, d.srv.Recorder().Events()}, nil
	})
	if err != nil {
		writeErr(w, code, err)
		return
	}
	pair := v.([2]any)
	id, backlog := pair[0].(int), pair[1].([]obs.Event)
	defer func() {
		d.subsMu.Lock()
		if sub, ok := d.subs[id]; ok {
			close(sub.ch)
			delete(d.subs, id)
		}
		d.subsMu.Unlock()
	}()
	d.subsMu.Lock()
	sub := d.subs[id]
	d.subsMu.Unlock()
	if sub == nil {
		// Loop exited (closeSubs) between registration and here; the
		// backlog is still a complete, valid stream.
		sub = &subscriber{ch: make(chan obs.Event)}
		close(sub.ch)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	for _, ev := range backlog {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flush()
		}
	}
}
