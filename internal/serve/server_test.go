package serve

import (
	"bytes"
	"testing"
	"time"

	"spider/internal/chaos"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mobility"
	"spider/internal/obs"
	"spider/internal/sim"
)

// corridorWorld is the shared test world: three open APs along a road,
// one declared client looping past them.
func corridorWorld() *WorldSpec {
	return &WorldSpec{
		Seed:      42,
		HorizonNS: int64(2 * time.Minute),
		Sites: []mobility.APSite{
			{Pos: geo.Point{X: 150, Y: 0}, Channel: dot11.Channel1, SSID: "corridor-a", Open: true, BackhaulBps: 2e6},
			{Pos: geo.Point{X: 350, Y: 0}, Channel: dot11.Channel6, SSID: "corridor-b", Open: true, BackhaulBps: 2e6},
			{Pos: geo.Point{X: 550, Y: 0}, Channel: dot11.Channel11, SSID: "corridor-c", Open: true, BackhaulBps: 2e6},
		},
		Clients: []ClientSpec{{
			ID:     0,
			Preset: "multi-channel/multi-AP",
			Route: RouteSpec{
				Points:   []geo.Point{{X: 0, Y: 0}, {X: 800, Y: 0}},
				SpeedMPS: 10,
				Loop:     true,
			},
		}},
	}
}

// testScript is the canonical intent sequence the determinism tests
// drive: a mid-run client, a chaos plan, and flow toggles, each at a
// fixed virtual barrier.
type scriptStep struct {
	at     sim.Time
	intent Intent
	after  sim.Time
}

func testScript() []scriptStep {
	staticRoute := RouteSpec{Points: []geo.Point{{X: 350, Y: 5}}}
	return []scriptStep{
		{at: 10 * time.Second, intent: Intent{
			Kind:   IntentAddClient,
			Client: &ClientSpec{ID: 9, Preset: "single-channel/multi-AP", Route: staticRoute},
		}},
		{at: 25 * time.Second, intent: Intent{
			Kind: IntentInjectChaos,
			Chaos: &chaos.Plan{Name: "mid-run", Events: []chaos.Event{
				{At: sim.Time(30 * time.Second), Kind: chaos.APCrash, AP: 1, Duration: 10 * time.Second},
			}},
		}},
		{at: 40 * time.Second, intent: Intent{
			Kind: IntentStopFlow, TargetClient: 0,
		}, after: 2 * time.Second},
		{at: 55 * time.Second, intent: Intent{
			Kind: IntentStartFlow, TargetClient: 9, FlowBytes: 64 << 10,
		}},
	}
}

// driveScript advances srv through the script with the given quantum,
// accepting each intent once the clock reaches its barrier, then
// advances to the end time.
func driveScript(t *testing.T, srv *Server, script []scriptStep, quantum, until sim.Time) {
	t.Helper()
	next := 0
	for srv.Now() < until {
		for next < len(script) && srv.Now() >= script[next].at {
			if _, err := srv.Accept(script[next].intent, script[next].after); err != nil {
				t.Fatalf("accept step %d: %v", next, err)
			}
			next++
		}
		// Stop the quantum at the next scripted accept time, so the
		// accept barriers — and therefore the recorded ApplyAt times —
		// are identical whatever quantum drives the run.
		target := srv.Now() + quantum
		if next < len(script) && script[next].at < target {
			target = script[next].at
		}
		if target > until {
			target = until
		}
		srv.Advance(target)
	}
	if next != len(script) {
		t.Fatalf("only %d/%d script steps accepted before until", next, len(script))
	}
}

// streams renders the deterministic artifacts.
func streams(t *testing.T, rec *obs.Recorder) ([]byte, []byte) {
	t.Helper()
	var evs, spans bytes.Buffer
	if err := obs.WriteJSONL(&evs, "", rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpansJSONL(&spans, "", rec.Spans()); err != nil {
		t.Fatal(err)
	}
	return evs.Bytes(), spans.Bytes()
}

// rollupArtifacts renders the telemetry plane's deterministic exports:
// the rollup JSONL (windows + flight accounting) followed by the flight
// recorder's retained events and spans.
func rollupArtifacts(t *testing.T, srv *Server) []byte {
	t.Helper()
	tel := srv.Telemetry()
	if tel == nil {
		t.Fatal("serve world has no telemetry plane")
	}
	var b bytes.Buffer
	if err := tel.WriteJSONL(&b, ""); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b, "", tel.FlightEvents()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpansJSONL(&b, "", tel.FlightSpans()); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

const testUntil = sim.Time(90 * time.Second)

// referenceRun produces the uninterrupted streams every crash-recovery
// comparison is judged against: obs events, spans, and the telemetry
// rollup/flight exports.
func referenceRun(t *testing.T) ([]byte, []byte, []byte) {
	t.Helper()
	srv, err := Open(t.TempDir(), corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	driveScript(t, srv, testScript(), sim.Time(time.Second), testUntil)
	evs, spans := streams(t, srv.rec)
	return evs, spans, rollupArtifacts(t, srv)
}

func TestOpenFreshAndPersistedConfig(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("fresh dir without spec should fail")
	}
	srv, err := Open(dir, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Reopen without a spec: config.json wins.
	srv2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Hash() != srv.Hash() {
		t.Fatalf("reopened hash %s != %s", srv2.Hash(), srv.Hash())
	}
	srv2.Close()

	// Reopen with a different spec: refused.
	other := corridorWorld()
	other.Seed = 43
	if _, err := Open(dir, other); err == nil {
		t.Fatal("conflicting spec silently accepted")
	}
}

func TestRestoreReplaysByteIdentically(t *testing.T) {
	refEvs, refSpans, refRoll := referenceRun(t)

	// Live run: drive half the script, checkpoint, drop everything
	// without closing (crash), reopen, finish the script.
	dir := t.TempDir()
	srv, err := Open(dir, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	script := testScript()
	driveScript(t, srv, script[:2], sim.Time(700*time.Millisecond), 30*time.Second)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no artifact flush.

	resumed, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Restored() < 30*time.Second {
		t.Fatalf("restored clock %s, want >= 30s", resumed.Restored())
	}
	if resumed.Applied() != 2 {
		t.Fatalf("replayed %d intents, want 2", resumed.Applied())
	}
	// Continue the remaining script with a different quantum — barriers
	// must be invisible.
	driveScript(t, resumed, script[2:], sim.Time(1300*time.Millisecond), testUntil)
	gotEvs, gotSpans := streams(t, resumed.rec)
	if !bytes.Equal(refEvs, gotEvs) {
		t.Fatalf("resumed event stream differs: %d vs %d bytes", len(gotEvs), len(refEvs))
	}
	if !bytes.Equal(refSpans, gotSpans) {
		t.Fatalf("resumed span stream differs: %d vs %d bytes", len(gotSpans), len(refSpans))
	}
	if gotRoll := rollupArtifacts(t, resumed); !bytes.Equal(refRoll, gotRoll) {
		t.Fatalf("resumed rollup export differs: %d vs %d bytes", len(gotRoll), len(refRoll))
	}
}

func TestSnapshotHashMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(dir, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	srv.Advance(5 * time.Second)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Corrupt the persisted config so its hash changes: the snapshot
	// must now be refused rather than replayed into the wrong world.
	other := corridorWorld()
	other.Seed = 99
	if err := saveConfig(dir, other); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("hash-mismatched snapshot silently accepted")
	}
}

func TestRejectedIntentIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(dir, corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	srv.Advance(time.Second)
	// Target client 55 never exists: accepted (payload is well-formed),
	// rejected at apply, and the rejection replays identically.
	if _, err := srv.Accept(Intent{Kind: IntentStartFlow, TargetClient: 55}, 0); err != nil {
		t.Fatal(err)
	}
	srv.Advance(3 * time.Second)
	if srv.Applied() != 1 {
		t.Fatalf("applied = %d, want 1 (rejected still counts)", srv.Applied())
	}
	evs, _ := streams(t, srv.rec)
	// Crash + resume: same stream.
	resumed, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	resumed.Advance(3 * time.Second)
	evs2, _ := streams(t, resumed.rec)
	if !bytes.Equal(evs, evs2) {
		t.Fatal("rejected intent replayed differently")
	}
	found := false
	for _, ev := range resumed.life.Events() {
		if ev.Kind == obs.KindServeIntent && len(ev.Note) > 9 && ev.Note[:9] == "rejected:" {
			found = true
		}
	}
	if !found {
		t.Fatal("no rejected-intent lifecycle event recorded")
	}
	srv.Close()
}

func TestAcceptValidation(t *testing.T) {
	srv, err := Open(t.TempDir(), corridorWorld())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cases := []Intent{
		{Kind: "no-such-kind"},
		{Kind: IntentAddClient},                                  // missing spec
		{Kind: IntentAddClient, Client: &ClientSpec{ID: 1}},      // no route
		{Kind: IntentInjectChaos},                                // missing plan
		{Kind: IntentInjectChaos, Chaos: &chaos.Plan{Name: "e"}}, // empty plan
		{Kind: IntentStartFlow, TargetClient: -4},
	}
	for i, in := range cases {
		if _, err := srv.Accept(in, 0); err == nil {
			t.Fatalf("case %d (%s) accepted", i, in.Kind)
		}
	}
	if srv.NextSeq() != 0 || srv.Pending() != 0 {
		t.Fatal("rejected intents consumed sequence numbers")
	}
}
