package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spider/internal/core"
	"spider/internal/obs"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// Server owns one live scenario plus its durability state: the world
// spec, the write-ahead intent log, and the checkpoint marker. It is not
// safe for concurrent use — the Daemon (http.go) serializes everything
// onto one loop goroutine, which is exactly what keeps intent
// acceptance at quiescent barriers.
type Server struct {
	dir  string
	spec *WorldSpec
	hash string

	scn *core.Scenario
	// rec is the scenario's deterministic recorder — the artifact the
	// bit-identical-resume contract covers.
	rec *obs.Recorder
	// tel is the world's streaming aggregation plane (nil when the spec
	// disables it). Rebuilt fresh on every Open and refilled by replay,
	// so its rollups share the recorder's bit-identical-resume contract.
	tel *telemetry.Aggregator
	// life is the daemon's own telemetry recorder (serve.* events). It
	// is explicitly outside the determinism contract: restore, stall,
	// and WAL-repair events describe this process's life, not the
	// simulated world's.
	life *obs.Recorder

	wal *WAL
	// pending holds accepted-but-unapplied intents in (ApplyAt, Seq)
	// order; Advance drains it as the clock passes each apply time.
	pending []Intent
	nextSeq uint64
	applied uint64
	// restored reports how far Open's replay advanced (the snapshot
	// time, or further if later intents were already durable).
	restored sim.Time
}

// Open boots a server from a state directory, creating it on first use.
//
// Fresh directory: spec is required; it is validated and persisted as
// config.json. Existing directory: the persisted spec wins (a non-nil
// spec argument must hash identically — changing the world under an
// existing intent log is refused, because replaying old intents into a
// new world would fabricate a plausible-but-wrong history).
//
// Open then recovers the WAL (repairing a torn tail), rebuilds the
// world from the spec, and replays every recovered intent at its
// recorded virtual time, leaving the clock at least at the last
// checkpoint. The scenario's event/span streams after Open are
// byte-identical to the uninterrupted run's streams up to that time.
func Open(dir string, spec *WorldSpec) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	onDisk, haveCfg, err := loadConfig(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case haveCfg && spec != nil && spec.Hash() != onDisk.Hash():
		return nil, fmt.Errorf("serve: %s/%s exists with config hash %s, refusing supplied spec %s",
			dir, configFile, onDisk.Hash(), spec.Hash())
	case haveCfg:
		spec = onDisk
	case spec == nil:
		return nil, fmt.Errorf("serve: fresh directory %s needs a world spec", dir)
	default:
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if err := saveConfig(dir, spec); err != nil {
			return nil, err
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	s := &Server{
		dir:  dir,
		spec: spec,
		hash: spec.Hash(),
		rec:  obs.NewRecorder(),
		life: obs.NewRecorder(),
	}

	wal, intents, info, err := OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	s.wal = wal

	snap, haveSnap, err := loadSnapshot(dir)
	if err != nil {
		wal.Close()
		return nil, err
	}
	if haveSnap {
		if snap.ConfigHash != s.hash {
			wal.Close()
			return nil, fmt.Errorf("serve: snapshot config hash %s != %s", snap.ConfigHash, s.hash)
		}
		if uint64(len(intents)) < snap.AppliedIntents {
			// The WAL lost records a checkpoint already counted as
			// applied. That is not a torn tail (those were never
			// acknowledged) — it is mid-log corruption, and replaying
			// the remainder would produce a different timeline than the
			// one clients observed. Refuse loudly.
			wal.Close()
			return nil, fmt.Errorf("serve: WAL holds %d intents but snapshot applied %d — mid-log corruption",
				len(intents), snap.AppliedIntents)
		}
	}

	// Build the world and declared clients at virtual time zero.
	s.tel = spec.TelemetryAggregator()
	wc := spec.WorldConfig(s.rec)
	wc.Telemetry = s.tel
	s.scn = core.NewScenario(wc)
	for _, cs := range spec.Clients {
		cc, err := cs.ClientConfig()
		if err != nil {
			wal.Close()
			return nil, err
		}
		s.scn.AddClient(cc)
	}
	s.scn.Start()

	if info.TruncatedBytes > 0 {
		s.life.World().Emit(obs.Event{
			At:    s.Now(),
			Kind:  obs.KindServeWALTruncated,
			Value: info.TruncatedBytes,
			Note:  fmt.Sprintf("%d intact records kept", info.Records),
		})
	}

	// Queue every recovered intent and replay to the restore horizon:
	// the checkpointed clock, or the latest durable apply time if
	// intents outran the last checkpoint.
	s.pending = intents
	sortPending(s.pending)
	for _, in := range intents {
		if in.Seq >= s.nextSeq {
			s.nextSeq = in.Seq + 1
		}
	}
	target := sim.Time(0)
	if haveSnap {
		if snap.NextSeq > s.nextSeq {
			s.nextSeq = snap.NextSeq
		}
		target = sim.Time(snap.SimTimeNS)
	}
	if n := len(s.pending); n > 0 {
		if last := s.pending[n-1].ApplyAt(); last > target {
			target = last
		}
	}
	if target > 0 || len(s.pending) > 0 {
		s.Advance(target)
	}
	s.restored = s.Now()
	if haveSnap || len(intents) > 0 {
		s.life.World().Emit(obs.Event{
			At:    s.Now(),
			Kind:  obs.KindServeRestore,
			Value: int64(s.applied),
			Note:  fmt.Sprintf("clock %s", s.Now()),
		})
	}
	return s, nil
}

// sortPending orders intents by (ApplyAt, Seq) — the application order
// the advance loop consumes.
func sortPending(p []Intent) {
	sort.SliceStable(p, func(i, j int) bool {
		if p[i].ApplyAtNS != p[j].ApplyAtNS {
			return p[i].ApplyAtNS < p[j].ApplyAtNS
		}
		return p[i].Seq < p[j].Seq
	})
}

// Now returns the virtual clock.
func (s *Server) Now() sim.Time { return s.scn.Engine().Now() }

// Accept durably admits one intent at the current quiescent barrier.
// The apply time is now + after (after < 0 clamps to 0). The intent is
// fsynced to the WAL before Accept returns — acknowledgement implies
// the input survives any crash after this point.
func (s *Server) Accept(in Intent, after sim.Time) (Intent, error) {
	if err := in.validate(); err != nil {
		return Intent{}, err
	}
	if after < 0 {
		after = 0
	}
	in.Seq = s.nextSeq
	in.ApplyAtNS = int64(s.Now() + after)
	if err := s.wal.Append(in); err != nil {
		return Intent{}, fmt.Errorf("serve: WAL append: %w", err)
	}
	s.nextSeq++
	s.pending = append(s.pending, in)
	sortPending(s.pending)
	return in, nil
}

// Advance runs virtual time forward to the given absolute time,
// applying pending intents at exactly their recorded apply times. The
// barrier sequence Advance happens to take cannot affect the event
// streams (quantum-subdivision invariance, TestSteppedRunMatchesBatchRun),
// so live stepping and restore replay converge on identical artifacts.
func (s *Server) Advance(to sim.Time) sim.Time {
	for {
		now := s.Now()
		for len(s.pending) > 0 && s.pending[0].ApplyAt() <= now {
			in := s.pending[0]
			s.pending = s.pending[1:]
			s.apply(in)
		}
		if now >= to {
			return now
		}
		barrier := to
		if len(s.pending) > 0 && s.pending[0].ApplyAt() < barrier {
			barrier = s.pending[0].ApplyAt()
		}
		s.scn.StepUntil(barrier)
	}
}

// apply executes one intent against the live world. Failures are
// recorded, not fatal: the same intent replayed into the same world
// fails the same way, so a rejected intent is still deterministic.
func (s *Server) apply(in Intent) {
	note := in.Kind
	err := s.applyErr(in)
	if err != nil {
		note = "rejected:" + err.Error()
	}
	s.applied++
	s.life.World().Emit(obs.Event{
		At:    s.Now(),
		Kind:  obs.KindServeIntent,
		Value: int64(in.Seq),
		Note:  note,
	})
}

func (s *Server) applyErr(in Intent) error {
	switch in.Kind {
	case IntentAddClient:
		cc, err := in.Client.ClientConfig()
		if err != nil {
			return err
		}
		return s.scn.AddClientNow(cc)
	case IntentInjectChaos:
		return s.scn.InjectPlan(*in.Chaos)
	case IntentStartFlow:
		c := s.scn.ClientByID(in.TargetClient)
		if c == nil {
			return fmt.Errorf("no client %d", in.TargetClient)
		}
		c.StartFlows(in.FlowBytes)
		return nil
	case IntentStopFlow:
		c := s.scn.ClientByID(in.TargetClient)
		if c == nil {
			return fmt.Errorf("no client %d", in.TargetClient)
		}
		c.StopFlows()
		return nil
	}
	return fmt.Errorf("unknown intent kind %q", in.Kind)
}

// Checkpoint durably records progress: the WAL is already on disk, so
// the marker only has to pin (clock, next seq, applied count) — written
// atomically, never in place.
func (s *Server) Checkpoint() error {
	err := saveSnapshot(s.dir, Snapshot{
		Version:        snapshotVersion,
		ConfigHash:     s.hash,
		Seed:           s.spec.Seed,
		SimTimeNS:      int64(s.Now()),
		NextSeq:        s.nextSeq,
		AppliedIntents: s.applied,
	})
	if err != nil {
		return err
	}
	s.life.World().Emit(obs.Event{
		At:    s.Now(),
		Kind:  obs.KindServeCheckpoint,
		Value: int64(s.applied),
	})
	return nil
}

// Close releases the WAL. It does not checkpoint — callers decide
// whether this shutdown is graceful (Daemon checkpoints first) or a
// simulated crash (tests just Close, or don't even that).
func (s *Server) Close() error { return s.wal.Close() }

// Spec returns the world spec the server runs.
func (s *Server) Spec() *WorldSpec { return s.spec }

// Hash returns the config hash snapshots are pinned to.
func (s *Server) Hash() string { return s.hash }

// Scenario exposes the live scenario (status introspection; mutating it
// other than through intents voids the replay warranty).
func (s *Server) Scenario() *core.Scenario { return s.scn }

// Recorder returns the scenario's deterministic recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Telemetry returns the streaming aggregation plane (nil when the spec
// disables it).
func (s *Server) Telemetry() *telemetry.Aggregator { return s.tel }

// Lifecycle returns the daemon telemetry recorder (serve.* events).
func (s *Server) Lifecycle() *obs.Recorder { return s.life }

// Pending returns the number of accepted, not-yet-applied intents.
func (s *Server) Pending() int { return len(s.pending) }

// Applied returns the number of intents applied so far.
func (s *Server) Applied() uint64 { return s.applied }

// NextSeq returns the next intent sequence number to be assigned.
func (s *Server) NextSeq() uint64 { return s.nextSeq }

// Restored returns the clock position Open's replay reached (zero for a
// fresh world).
func (s *Server) Restored() sim.Time { return s.restored }
