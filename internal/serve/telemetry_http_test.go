package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"spider/internal/sim"
)

// TestHTTPRollups drives a paced daemon past a few window closes and
// exercises GET /v1/rollups: full listing, the last-N and from_ns
// filters, and parameter validation.
func TestHTTPRollups(t *testing.T) {
	spec := corridorWorld()
	spec.Telemetry = &TelemetrySpec{KeepClients: 1} // keep every client's events
	srv, err := Open(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(srv, DaemonConfig{
		Quantum: sim.Time(500 * time.Millisecond),
		Pace:    50, // 1 virtual second per 20ms wall
	})
	ctx, cancel := context.WithCancel(context.Background())
	go d.Run(ctx)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() { ts.Close(); cancel(); d.Wait() })

	get := func(path string) (rollupsResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr rollupsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
		}
		return rr, resp.StatusCode
	}

	// Wait for at least three closed windows.
	var all rollupsResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		rr, code := get("/v1/rollups")
		if code != http.StatusOK {
			t.Fatalf("rollups: status %d", code)
		}
		if len(rr.Windows) >= 3 {
			all = rr
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows closed before deadline", len(rr.Windows))
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, w := range all.Windows {
		if w.Index != int64(i) {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.EndNS-w.StartNS != int64(time.Second) {
			t.Fatalf("window %d spans %d ns, want 1s", i, w.EndNS-w.StartNS)
		}
	}
	if all.Flight.EventsAdmitted == 0 {
		t.Fatalf("flight recorder admitted nothing: %+v", all.Flight)
	}

	last, code := get("/v1/rollups?last=1")
	if code != http.StatusOK || len(last.Windows) != 1 {
		t.Fatalf("last=1: status %d, %d windows", code, len(last.Windows))
	}
	from, code := get("/v1/rollups?from_ns=" + "1000000000")
	if code != http.StatusOK {
		t.Fatalf("from_ns: status %d", code)
	}
	for _, w := range from.Windows {
		if w.EndNS <= int64(time.Second) {
			t.Fatalf("from_ns filter leaked window ending at %d", w.EndNS)
		}
	}
	if _, code := get("/v1/rollups?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad last param: status %d, want 400", code)
	}
}

// TestHTTPRollupsDisabled: a spec that disables telemetry answers 404.
func TestHTTPRollupsDisabled(t *testing.T) {
	spec := corridorWorld()
	spec.Telemetry = &TelemetrySpec{Disable: true}
	srv, err := Open(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(srv, DaemonConfig{Quantum: sim.Time(100 * time.Millisecond), Pace: 10})
	ctx, cancel := context.WithCancel(context.Background())
	go d.Run(ctx)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() { ts.Close(); cancel(); d.Wait() })

	resp, err := http.Get(ts.URL + "/v1/rollups")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled telemetry: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPMetricsPrometheus (satellite): /v1/metrics serves the
// Prometheus text exposition with a pinned deterministic line order —
// metric lines arrive sorted, carry the spider_ prefix, and include the
// telemetry plane's counters.
func TestHTTPMetricsPrometheus(t *testing.T) {
	_, ts := startDaemon(t, DaemonConfig{
		Quantum: sim.Time(100 * time.Millisecond),
		Pace:    10,
	})
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "spider_telemetry_windows_closed") {
		t.Fatalf("exposition missing telemetry counter:\n%s", text)
	}
	// The renderer walks the registry snapshot sorted by (type, name), so
	// every metric line must carry the prefix and, within each declared
	// type, names must ascend — the pinned order the scrape-diff tooling
	// relies on. Histogram expansion (_count/_sum) collapses to its base.
	byType := make(map[string][]string)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			if line != "" && !strings.HasPrefix(line, "#") &&
				!strings.HasPrefix(line, "spider_") {
				t.Fatalf("metric line %q missing spider_ prefix", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("malformed TYPE line %q", line)
		}
		name := strings.TrimSuffix(strings.TrimSuffix(fields[2], "_sum"), "_count")
		kind := fields[3]
		if g := byType[kind]; len(g) == 0 || g[len(g)-1] != name {
			byType[kind] = append(g, name)
		}
	}
	if len(byType) == 0 {
		t.Fatal("empty exposition")
	}
	for kind, names := range byType {
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s metrics out of order: %v", kind, names)
		}
	}
}
