package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"spider/internal/atomicwrite"
)

// On-disk layout of a serve state directory:
//
//	config.json   — the WorldSpec, written once at first boot
//	intents.wal   — the write-ahead intent log (wal.go)
//	snapshot.json — the latest checkpoint marker (this file)
//
// Note what is absent: no serialized simulation state. The snapshot is a
// progress marker, not a state dump — restore always rebuilds from the
// spec and replays the WAL from virtual time zero. That makes the
// checkpoint trivially consistent (two small atomic files plus an
// append-only log) at the cost of replay time proportional to sim
// history, which for this simulator is orders of magnitude faster than
// real time.
const (
	configFile   = "config.json"
	walFile      = "intents.wal"
	snapshotFile = "snapshot.json"
)

// snapshotVersion guards the marker format.
const snapshotVersion = 1

// Snapshot is the durable progress marker: how far virtual time had
// advanced, and how much of the intent log was already applied, at the
// moment of the checkpoint. Restore advances at least this far before
// serving again, so a resumed daemon never hands out a virtual clock
// that runs backwards across the crash.
type Snapshot struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	Seed       int64  `json:"seed"`
	// SimTimeNS is the virtual clock at checkpoint.
	SimTimeNS int64 `json:"sim_time_ns"`
	// NextSeq is the next intent sequence number to assign.
	NextSeq uint64 `json:"next_seq"`
	// AppliedIntents counts intents applied before the checkpoint.
	AppliedIntents uint64 `json:"applied_intents"`
}

// saveSnapshot atomically publishes the marker (temp + fsync + rename).
func saveSnapshot(dir string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return atomicwrite.WriteFile(filepath.Join(dir, snapshotFile), append(b, '\n'), 0o644)
}

// loadSnapshot reads the marker; ok=false when none exists yet.
func loadSnapshot(dir string) (Snapshot, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if os.IsNotExist(err) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, false, fmt.Errorf("serve: corrupt %s: %w", snapshotFile, err)
	}
	if s.Version != snapshotVersion {
		return Snapshot{}, false, fmt.Errorf("serve: snapshot version %d (want %d)", s.Version, snapshotVersion)
	}
	return s, true, nil
}

// saveConfig atomically writes the world spec.
func saveConfig(dir string, spec *WorldSpec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return atomicwrite.WriteFile(filepath.Join(dir, configFile), append(b, '\n'), 0o644)
}

// loadConfig reads the world spec; ok=false when the directory is fresh.
func loadConfig(dir string) (*WorldSpec, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, configFile))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var spec WorldSpec
	if err := json.Unmarshal(b, &spec); err != nil {
		return nil, false, fmt.Errorf("serve: corrupt %s: %w", configFile, err)
	}
	return &spec, true, nil
}
