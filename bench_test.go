// Package spider_test benchmarks every table and figure of the paper's
// evaluation at reduced fidelity, plus the core data-path microbenchmarks.
// Each BenchmarkFigureN/BenchmarkTableN regenerates the corresponding
// artifact; run with
//
//	go test -bench=. -benchmem
//
// For full-fidelity numbers use cmd/spider-bench (these benches use a small
// Scale so a full sweep stays tractable).
package spider_test

import (
	"testing"
	"time"

	"spider"
	"spider/internal/experiments"
	"spider/internal/fleet"
)

// benchOpts returns low-fidelity options keyed by the benchmark's own
// iteration index so repeated iterations stay deterministic but distinct.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(i + 1), Scale: 0.1}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(benchOpts(i))
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(benchOpts(i))
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4(benchOpts(i))
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5(benchOpts(i))
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure6(benchOpts(i))
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(benchOpts(i))
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure8(benchOpts(i))
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(benchOpts(i))
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure10(benchOpts(i))
	}
}

// BenchmarkTownStudy drives the full Table 2 configuration set; Figures
// 11-13 and 16-17 and Tables 2/4 all derive from its output.
func BenchmarkTownStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.TownStudy(benchOpts(i))
		experiments.Table2(tr)
		experiments.Table4(tr)
		experiments.Figure11(tr)
		experiments.Figure12(tr)
		experiments.Figure13(tr)
		experiments.Figure16(benchOpts(i), tr)
		experiments.Figure17(benchOpts(i), tr)
		experiments.APDensity(tr)
	}
}

// BenchmarkFigure5Fleet runs the largest join sweep through the parallel
// execution engine at the machine's core count; compare against
// BenchmarkFigure5 for the sharding speedup (identical output either way).
func BenchmarkFigure5Fleet(b *testing.B) {
	pool := fleet.New(fleet.Config{})
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		o.Fleet = pool.Group("fig5")
		experiments.Figure5(o)
	}
}

// BenchmarkTownStudyFleet is BenchmarkTownStudy with the town drives
// sharded across workers and memoized in the pool's result cache.
func BenchmarkTownStudyFleet(b *testing.B) {
	pool := fleet.New(fleet.Config{})
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		o.Fleet = pool.Group("town")
		tr := experiments.TownStudy(o)
		experiments.Table2(tr)
		experiments.Table4(tr)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchOpts(i))
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure14(benchOpts(i))
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure15(benchOpts(i))
	}
}

func BenchmarkAppendixA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AppendixA(benchOpts(i))
	}
}

// BenchmarkScenarioSecond measures simulator speed: virtual seconds of a
// busy single-channel multi-AP town scenario per wall-clock benchmark op.
func BenchmarkScenarioSecond(b *testing.B) {
	loop := []spider.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	route := append(append([]spider.Point(nil), loop...), loop[0])
	sites := spider.Deploy(1, route, spider.DefaultDeploy())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spider.Run(spider.ScenarioConfig{
			Seed:     int64(i + 1),
			Duration: 30 * time.Second,
			Preset:   spider.SingleChannelMultiAP,
			Mobility: spider.Route(loop, 10, true),
			Sites:    sites,
		})
	}
}

// BenchmarkJoinModel measures the analytical model's evaluation cost at
// Figure 4's operating point.
func BenchmarkJoinModel(b *testing.B) {
	m := spider.PaperJoinModel(10 * time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.JoinProbability(0.4, 40*time.Second)
	}
}

// BenchmarkOptimalSchedule measures one Eq. 8-10 solve.
func BenchmarkOptimalSchedule(b *testing.B) {
	m := spider.PaperJoinModel(10 * time.Second)
	prob := spider.ScheduleProblem{
		Model: m, Bw: 11e6, T: 20 * time.Second,
		Channels: []spider.ChannelInput{{Joined: 0.5 * 11e6}, {Available: 0.5 * 11e6}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spider.OptimalSchedule(prob, 0.05)
	}
}

// BenchmarkPopulation runs one 8-client rung of the population experiment:
// the cost of an N-client scenario on a contended corridor (compare with
// BenchmarkScenarioSecond for the single-client baseline).
func BenchmarkPopulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := experiments.Options{Seed: int64(i + 1), Scale: 0.02}
		world, clients := experiments.PopulationScenario(o, 8)
		spider.RunPopulation(world, clients)
	}
}

// BenchmarkAblations regenerates the design-choice ablation tables
// (lease cache, timers, interface count, striping, adaptive scheduling).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts(i)
		experiments.AblationLeaseCache(o)
		experiments.AblationTimers(o)
		experiments.AblationInterfaces(o)
		experiments.AblationStriping(o)
		experiments.AblationAdaptive(o)
		experiments.AblationPredictive(o)
		experiments.AblationEnergy(o)
	}
}
