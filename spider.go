// Package spider is the public API of this repository: a from-scratch
// reproduction of "Spider: Improving Mobile Networking with Concurrent
// Wi-Fi Connections" (Soroush et al.).
//
// Spider maintains concurrent 802.11 associations from a moving vehicle by
// time-slicing a single radio across channels (not across APs), selecting
// APs by join-success history, caching DHCP leases, and shrinking join
// timeouts. This package re-exports the three layers a user composes:
//
//   - Scenario simulation: Run executes a full client-against-deployment
//     scenario (mobility, PHY, APs, DHCP, TCP) and reports throughput,
//     connectivity, and join telemetry.
//   - Analytical model: JoinModel evaluates the paper's closed-form join
//     probability (Eq. 5-7) and its Monte-Carlo validator.
//   - Optimization: OptimalSchedule solves the throughput-maximization
//     problem (Eq. 8-10); the knapsack solvers back Appendix A.
//
// The full experiment harness living behind cmd/spider-bench regenerates
// every table and figure of the paper's evaluation.
package spider

import (
	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mobility"
	"spider/internal/model"
	"spider/internal/opt"
	"spider/internal/sim"
)

// Re-exported scenario types.
type (
	// ScenarioConfig describes one simulated run; see core.ScenarioConfig.
	ScenarioConfig = core.ScenarioConfig
	// WorldConfig is the shared world of an N-client scenario.
	WorldConfig = core.WorldConfig
	// ClientConfig is one client of an N-client scenario.
	ClientConfig = core.ClientConfig
	// Result is a run's measurements.
	Result = core.Result
	// PopulationResult aggregates an N-client run.
	PopulationResult = core.PopulationResult
	// Preset selects one of the paper's configurations.
	Preset = core.Preset
	// TimerProfile groups the join timeout knobs.
	TimerProfile = core.TimerProfile
	// APSite is one deployed access point.
	APSite = mobility.APSite
	// DeployConfig controls roadside AP placement.
	DeployConfig = mobility.DeployConfig
	// Point is a map position in metres.
	Point = geo.Point
	// Channel is an 802.11 channel number.
	Channel = dot11.Channel
	// Time is a simulated duration (an alias of time.Duration).
	Time = sim.Time
)

// The evaluated configurations.
const (
	SingleChannelMultiAP  = core.SingleChannelMultiAP
	SingleChannelSingleAP = core.SingleChannelSingleAP
	MultiChannelMultiAP   = core.MultiChannelMultiAP
	MultiChannelSingleAP  = core.MultiChannelSingleAP
	Stock                 = core.Stock
	Adaptive              = core.Adaptive
	Predictive            = core.Predictive
)

// The orthogonal 2.4 GHz channels.
const (
	Channel1  = dot11.Channel1
	Channel6  = dot11.Channel6
	Channel11 = dot11.Channel11
)

// Run executes a scenario to completion; it is deterministic in
// cfg.Seed.
func Run(cfg ScenarioConfig) Result { return core.Run(cfg) }

// RunPopulation executes one shared world traversed by N clients and
// returns per-client results plus population aggregates (goodput
// distribution, Jain's fairness index, DHCP pool pressure). Deterministic
// in world.Seed and the client ID set — client order never matters.
func RunPopulation(world WorldConfig, clients []ClientConfig) PopulationResult {
	return core.RunPopulation(world, clients)
}

// ReducedTimers returns Spider's tuned join-timeout profile.
func ReducedTimers() TimerProfile { return core.ReducedTimers() }

// DefaultTimers returns a stock network stack's profile.
func DefaultTimers() TimerProfile { return core.DefaultTimers() }

// StaticClient returns a stationary mobility model (indoor experiments).
func StaticClient(p Point) mobility.Model { return mobility.Static(p) }

// Route returns a constant-speed waypoint route; loop closes it.
func Route(points []Point, speedMps float64, loop bool) mobility.Model {
	return mobility.NewWaypoints(points, speedMps, loop)
}

// Deploy places APs along a route with Poisson spacing; see
// mobility.DeployAlongRoute.
func Deploy(seed int64, route []Point, cfg DeployConfig) []APSite {
	return mobility.DeployAlongRoute(sim.NewRNG(seed), route, cfg)
}

// DefaultDeploy matches the paper's measured town (channel mix, density,
// open fraction).
func DefaultDeploy() DeployConfig { return mobility.DefaultDeployConfig() }

// JoinModel is the analytical join model of Eq. 5-7.
type JoinModel = model.Params

// PaperJoinModel returns the parameterization behind the paper's Figure 2.
func PaperJoinModel(betaMax Time) JoinModel { return model.PaperParams(betaMax) }

// ChannelInput describes one channel for the schedule optimizer.
type ChannelInput = opt.ChannelInput

// ScheduleProblem is the throughput-maximization instance of Eq. 8-10.
type ScheduleProblem = opt.Problem

// ScheduleSolution is an optimal channel schedule.
type ScheduleSolution = opt.Solution

// OptimalSchedule solves the throughput maximization at the given fraction
// granularity.
func OptimalSchedule(p ScheduleProblem, step float64) ScheduleSolution { return p.Solve(step) }

// DividingSpeed finds the speed above which a single channel is optimal.
func DividingSpeed(m JoinModel, bw float64, channels []ChannelInput, radioRange, minSpeed, maxSpeed, speedStep, fracStep float64) float64 {
	return opt.DividingSpeed(m, bw, channels, radioRange, minSpeed, maxSpeed, speedStep, fracStep)
}
