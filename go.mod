module spider

go 1.22
