// Command spider-trace analyzes the span JSONL that spider-bench -spans
// (or any obs.WriteSpansJSONL caller) exports.
//
// Usage:
//
//	spider-trace -spans spans.jsonl
//	spider-trace -spans spans.jsonl -run 'population#n=8' -t 12s
//	spider-trace -spans spans.jsonl -chrome trace.json
//	spider-trace -rollups rollups.jsonl
//
// The report breaks join latency down by pipeline phase (scan, probe,
// auth, assoc, DHCP, connectivity test), compares the measured per-channel
// join probability with the paper's Eq. 5-7 prediction at the measured
// schedule fractions, aggregates per-channel and per-AP occupancy, and
// attributes outage time to cause. -chrome additionally writes a Chrome
// trace-event file loadable in Perfetto or chrome://tracing.
//
// -rollups switches to the telemetry plane's bounded-memory export
// (spider-bench -rollups, or GET /v1/rollups on spider-serve): a
// per-window breakdown with run-level quantiles re-derived from the
// merged window sketches, SLO violation tallies, and the flight-recorder
// accounting. -run and -out apply as usual; -spans is not required.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spider/internal/model"
	"spider/internal/sim"
	"spider/internal/tracereport"
)

func main() {
	var (
		spansPath   = flag.String("spans", "", "span JSONL file to analyze ('-' = stdin)")
		rollupsPath = flag.String("rollups", "", "rollup JSONL file to render instead ('-' = stdin)")
		runFilter   = flag.String("run", "", "restrict the report to one run label")
		outPath     = flag.String("out", "", "write the text report here (default stdout)")
		chrome      = flag.String("chrome", "", "also write a Chrome trace-event JSON file here")
		residence   = flag.Duration("t", 10*time.Second, "modeled time in AP range for the Eq. 5-7 comparison")
		betaMax     = flag.Duration("beta-max", time.Second, "modeled maximum DHCP timeout for the Eq. 5-7 comparison")
	)
	flag.Parse()
	if *rollupsPath != "" {
		rollupReport(*rollupsPath, *runFilter, *outPath)
		return
	}
	if *spansPath == "" {
		fmt.Fprintln(os.Stderr, "spider-trace: -spans or -rollups is required (path to JSONL, or '-' for stdin)")
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *spansPath != "-" {
		f, err := os.Open(*spansPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	spans, err := tracereport.ReadSpans(in)
	if err != nil {
		fatal(err)
	}
	if *runFilter != "" {
		kept := spans[:0]
		for _, s := range spans {
			if s.Run == *runFilter {
				kept = append(kept, s)
			}
		}
		spans = kept
		if len(spans) == 0 {
			fatal(fmt.Errorf("no spans with run label %q", *runFilter))
		}
	}

	a := tracereport.Analyze(spans)
	report := a.Report(model.PaperParams(sim.Time(*betaMax)), sim.Time(*residence))
	if *outPath == "" {
		fmt.Print(report)
	} else if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
		fatal(err)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := tracereport.WriteChrome(f, spans); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# chrome trace written to %s\n", *chrome)
	}
}

// rollupReport renders the telemetry rollup export: every run in the
// file, or just the one named by runFilter.
func rollupReport(path, runFilter, outPath string) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rf, err := tracereport.ReadRollups(in)
	if err != nil {
		fatal(err)
	}
	runs := rf.Runs
	if runFilter != "" {
		if _, ok := rf.Windows[runFilter]; !ok {
			fatal(fmt.Errorf("no rollups with run label %q", runFilter))
		}
		runs = []string{runFilter}
	}
	var b strings.Builder
	for _, run := range runs {
		b.WriteString(rf.RollupReport(run))
	}
	if outPath == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(outPath, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spider-trace:", err)
	os.Exit(1)
}
