// Command spider-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spider-bench -list
//	spider-bench -run all -scale 0.2
//	spider-bench -run fig2,table2 -format csv -out results/
//
// Each experiment is deterministic in -seed. -scale in (0,1] trades
// fidelity for runtime (1.0 reproduces the full paper-scale runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"spider/internal/experiments"
)

type renderable interface {
	Render() string
	CSV() string
}

type experiment struct {
	id   string
	desc string
	run  func(experiments.Options) []renderable
}

func one(r renderable) []renderable { return []renderable{r} }

// townCache shares the expensive town study across the experiments that
// derive from it within a single invocation.
var townCache *experiments.TownResults

func town(o experiments.Options) *experiments.TownResults {
	if townCache == nil {
		townCache = experiments.TownStudy(o)
	}
	return townCache
}

var registry = []experiment{
	{"fig2", "join model vs simulation", func(o experiments.Options) []renderable { return one(experiments.Figure2(o)) }},
	{"fig3", "join probability vs βmax", func(o experiments.Options) []renderable { return one(experiments.Figure3(o)) }},
	{"fig4", "optimal bandwidth vs speed (3 splits + dividing speeds)", func(o experiments.Options) []renderable {
		var out []renderable
		for _, f := range experiments.Figure4(o) {
			out = append(out, f)
		}
		out = append(out, experiments.DividingSpeeds(o))
		return out
	}},
	{"fig5", "association time vs schedule fraction", func(o experiments.Options) []renderable { return one(experiments.Figure5(o)) }},
	{"fig6", "dhcp lease time vs schedule and timeout", func(o experiments.Options) []renderable { return one(experiments.Figure6(o)) }},
	{"fig7", "TCP throughput vs primary-channel fraction", func(o experiments.Options) []renderable { return one(experiments.Figure7(o)) }},
	{"fig8", "TCP throughput vs absolute dwell", func(o experiments.Options) []renderable { return one(experiments.Figure8(o)) }},
	{"table1", "channel switch latency", func(o experiments.Options) []renderable { return one(experiments.Table1(o)) }},
	{"fig10", "throughput vs backhaul bandwidth", func(o experiments.Options) []renderable { return one(experiments.Figure10(o)) }},
	{"table2", "throughput/connectivity by configuration", func(o experiments.Options) []renderable { return one(experiments.Table2(town(o))) }},
	{"fig11", "connection duration CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure11(town(o))) }},
	{"fig12", "disruption length CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure12(town(o))) }},
	{"fig13", "instantaneous bandwidth CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure13(town(o))) }},
	{"table3", "dhcp failure probabilities", func(o experiments.Options) []renderable { return one(experiments.Table3(o)) }},
	{"fig14", "join time vs dhcp timeout", func(o experiments.Options) []renderable { return one(experiments.Figure14(o)) }},
	{"fig15", "join time vs scheduling policy", func(o experiments.Options) []renderable { return one(experiments.Figure15(o)) }},
	{"table4", "throughput/connectivity by channel count", func(o experiments.Options) []renderable { return one(experiments.Table4(town(o))) }},
	{"fig16", "user vs Spider connection lengths", func(o experiments.Options) []renderable { return one(experiments.Figure16(o, town(o))) }},
	{"fig17", "user vs Spider disruption lengths", func(o experiments.Options) []renderable { return one(experiments.Figure17(o, town(o))) }},
	{"apdensity", "time at k concurrent APs (Section 4.4)", func(o experiments.Options) []renderable { return one(experiments.APDensity(town(o))) }},
	{"appendixa", "multi-AP selection solver ablation", func(o experiments.Options) []renderable { return one(experiments.AppendixA(o)) }},
	{"ablation", "design-choice ablations (lease cache, timers, vifs, striping, adaptive, predictive, energy)", func(o experiments.Options) []renderable {
		return []renderable{
			experiments.AblationLeaseCache(o),
			experiments.AblationTimers(o),
			experiments.AblationInterfaces(o),
			experiments.AblationStriping(o),
			experiments.AblationAdaptive(o),
			experiments.AblationPredictive(o),
			experiments.AblationEnergy(o),
		}
	}},
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "fidelity scale in (0,1]")
		format  = flag.String("format", "text", "output format: text or csv")
		outDir  = flag.String("out", "", "directory to write one file per experiment (default stdout)")
	)
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var known []string
		for _, e := range registry {
			known = append(known, e.id)
		}
		sort.Strings(known)
		for id := range want {
			found := false
			for _, k := range known {
				if k == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(known, ", "))
				os.Exit(2)
			}
		}
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range registry {
		if *runList != "all" && !want[e.id] {
			continue
		}
		start := time.Now()
		outputs := e.run(opts)
		elapsed := time.Since(start)
		for i, r := range outputs {
			var body string
			ext := "txt"
			if *format == "csv" {
				body = r.CSV()
				ext = "csv"
			} else {
				body = r.Render()
			}
			if *outDir == "" {
				fmt.Print(body)
				fmt.Println()
				continue
			}
			name := e.id
			if len(outputs) > 1 {
				name = fmt.Sprintf("%s-%d", e.id, i)
			}
			path := filepath.Join(*outDir, name+"."+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", e.id, elapsed.Round(time.Millisecond))
	}
}
