// Command spider-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spider-bench -list
//	spider-bench -run all -scale 0.2
//	spider-bench -run fig2,table2 -format csv -out results/
//	spider-bench -run all -workers 8 -progress -timings results/bench_timings.json
//	spider-bench -run chaos -events out.jsonl -pprof localhost:6060
//	spider-bench -run population -spans spans.jsonl   (analyze with spider-trace)
//	spider-bench -run chaos -rollups rollups.jsonl    (analyze with spider-trace -rollups)
//	spider-bench -run none -benchgate BENCH_population.json
//	spider-bench -run none -teloverhead results/telemetry-overhead.txt
//
// Each experiment is deterministic in -seed. -scale in (0,1] trades
// fidelity for runtime (1.0 reproduces the full paper-scale runs).
//
// Independent simulation runs are sharded across a bounded worker pool
// (internal/fleet). Every job derives its own seed and results merge in
// canonical order, so output is byte-identical for any -workers value;
// -workers 1 reproduces the fully sequential runner. A panicking run is
// isolated to its experiment: the failure is reported on stderr and the
// remaining experiments still complete (exit status 1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"spider/internal/atomicwrite"
	"spider/internal/benchgate"
	"spider/internal/core"
	"spider/internal/experiments"
	"spider/internal/fleet"
	"spider/internal/obs"
	"spider/internal/telemetry"
)

type renderable interface {
	Render() string
	CSV() string
}

type experiment struct {
	id   string
	desc string
	run  func(experiments.Options) []renderable
}

func one(r renderable) []renderable { return []renderable{r} }

// town routes every town-derived experiment through the fleet result
// cache: TownStudy memoizes itself under its canonical options key, so
// Table 2/4, Figures 11-13/16-17, and the AP-density summary share one
// computation however many of them run, in whatever order.
func town(o experiments.Options) *experiments.TownResults {
	return experiments.TownStudy(o)
}

var registry = []experiment{
	{"fig2", "join model vs simulation", func(o experiments.Options) []renderable { return one(experiments.Figure2(o)) }},
	{"fig3", "join probability vs βmax", func(o experiments.Options) []renderable { return one(experiments.Figure3(o)) }},
	{"fig4", "optimal bandwidth vs speed (3 splits + dividing speeds)", func(o experiments.Options) []renderable {
		var out []renderable
		for _, f := range experiments.Figure4(o) {
			out = append(out, f)
		}
		out = append(out, experiments.DividingSpeeds(o))
		return out
	}},
	{"fig5", "association time vs schedule fraction", func(o experiments.Options) []renderable { return one(experiments.Figure5(o)) }},
	{"fig6", "dhcp lease time vs schedule and timeout", func(o experiments.Options) []renderable { return one(experiments.Figure6(o)) }},
	{"fig7", "TCP throughput vs primary-channel fraction", func(o experiments.Options) []renderable { return one(experiments.Figure7(o)) }},
	{"fig8", "TCP throughput vs absolute dwell", func(o experiments.Options) []renderable { return one(experiments.Figure8(o)) }},
	{"table1", "channel switch latency", func(o experiments.Options) []renderable { return one(experiments.Table1(o)) }},
	{"fig10", "throughput vs backhaul bandwidth", func(o experiments.Options) []renderable { return one(experiments.Figure10(o)) }},
	{"table2", "throughput/connectivity by configuration", func(o experiments.Options) []renderable { return one(experiments.Table2(town(o))) }},
	{"fig11", "connection duration CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure11(town(o))) }},
	{"fig12", "disruption length CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure12(town(o))) }},
	{"fig13", "instantaneous bandwidth CDFs", func(o experiments.Options) []renderable { return one(experiments.Figure13(town(o))) }},
	{"table3", "dhcp failure probabilities", func(o experiments.Options) []renderable { return one(experiments.Table3(o)) }},
	{"fig14", "join time vs dhcp timeout", func(o experiments.Options) []renderable { return one(experiments.Figure14(o)) }},
	{"fig15", "join time vs scheduling policy", func(o experiments.Options) []renderable { return one(experiments.Figure15(o)) }},
	{"table4", "throughput/connectivity by channel count", func(o experiments.Options) []renderable { return one(experiments.Table4(town(o))) }},
	{"fig16", "user vs Spider connection lengths", func(o experiments.Options) []renderable { return one(experiments.Figure16(o, town(o))) }},
	{"fig17", "user vs Spider disruption lengths", func(o experiments.Options) []renderable { return one(experiments.Figure17(o, town(o))) }},
	{"apdensity", "time at k concurrent APs (Section 4.4)", func(o experiments.Options) []renderable { return one(experiments.APDensity(town(o))) }},
	{"appendixa", "multi-AP selection solver ablation", func(o experiments.Options) []renderable { return one(experiments.AppendixA(o)) }},
	{"chaos", "fault-injection sweep: recovery time and goodput retention", func(o experiments.Options) []renderable {
		cr := experiments.ChaosStudy(o)
		return []renderable{experiments.ChaosTable(cr), experiments.ChaosRecoveryFigure(cr)}
	}},
	{"population", "N-client scaling on a shared corridor: aggregate goodput, fairness, DHCP pool pressure", func(o experiments.Options) []renderable {
		r := experiments.PopulationStudy(o)
		return []renderable{experiments.PopulationTable(r), experiments.PopulationFigure(r)}
	}},
	{"fairness", "fairness frontier: heuristic vs decentralized vs oracle PF allocation across the population ladder", func(o experiments.Options) []renderable {
		r := experiments.FairnessStudy(o)
		return []renderable{experiments.FairnessTable(r), experiments.FairnessJainFigure(r), experiments.FairnessGoodputFigure(r)}
	}},
	{"rushhour", "address-exhaustion rush: lease churn through shared IPAM pools, with/without failover and GC", func(o experiments.Options) []renderable {
		r := experiments.RushHourStudy(o)
		return []renderable{experiments.RushHourTable(r), experiments.RushHourFigure(r)}
	}},
	{"ablation", "design-choice ablations (lease cache, timers, vifs, striping, adaptive, predictive, energy)", func(o experiments.Options) []renderable {
		return []renderable{
			experiments.AblationLeaseCache(o),
			experiments.AblationTimers(o),
			experiments.AblationInterfaces(o),
			experiments.AblationStriping(o),
			experiments.AblationAdaptive(o),
			experiments.AblationPredictive(o),
			experiments.AblationEnergy(o),
		}
	}},
}

// outcome collects one experiment's results for in-order emission.
type outcome struct {
	outputs []renderable
	err     error
	wall    time.Duration
	stats   fleet.GroupStats
	done    chan struct{}
}

// timingRecord is one experiment's machine-readable timing line.
type timingRecord struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
	// Failed counts jobs that panicked or were canceled.
	Failed    int `json:"failed,omitempty"`
	CacheHits int `json:"cache_hits"`
	// JobWallMS is the summed wall time of the experiment's fleet jobs —
	// the cost a sequential runner would have paid for them.
	JobWallMS float64 `json:"job_wall_ms"`
	// WallMS is the experiment's observed wall time on the shared pool.
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// timingsFile seeds the repo's performance trajectory: one record per
// experiment plus enough host context to compare runs.
type timingsFile struct {
	Seed        int64          `json:"seed"`
	Scale       float64        `json:"scale"`
	Workers     int            `json:"workers"`
	NumCPU      int            `json:"num_cpu"`
	TotalJobs   int            `json:"total_jobs"`
	CacheHits   int            `json:"cache_hits"`
	TotalWallMS float64        `json:"total_wall_ms"`
	Experiments []timingRecord `json:"experiments"`
}

func main() {
	var (
		runList  = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 1.0, "fidelity scale in (0,1]")
		format   = flag.String("format", "text", "output format: text or csv")
		outDir   = flag.String("out", "", "directory to write one file per experiment (default stdout)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (1 = fully sequential)")
		progress = flag.Bool("progress", false, "report fleet progress (jobs, cache, ETA) on stderr")
		timings  = flag.String("timings", "", "write machine-readable per-experiment timings JSON to this file")
		popjson  = flag.String("popjson", "", "benchmark the population ladder (1/8/64 classic rungs, a 32-client ipam-enabled rung, and dense-stagger 256/1024 city-scale rungs) and write goodput, ns/op, and allocs JSON to this file")
		gate     = flag.String("benchgate", "", "re-measure the population benchmark and exit non-zero if it regressed past -benchgate-threshold vs this baseline JSON (at default -seed/-scale, gates against the baseline's own workload)")
		gateThr  = flag.Float64("benchgate-threshold", 0.15, "relative regression tolerated by -benchgate (0.15 = 15%)")
		allocThr = flag.Float64("benchgate-alloc-threshold", benchgate.DefaultAllocThreshold, "stricter relative growth tolerated for the deterministic allocation metrics (0.05 = 5%)")
		events   = flag.String("events", "", "record every simulation run's structured event stream and write merged JSONL to this file")
		spansOut = flag.String("spans", "", "record every simulation run's causal spans and write merged JSONL to this file (analyze with spider-trace)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
		obsOver  = flag.String("obsoverhead", "", "measure event-recording overhead on the chaos scenario and write the report to this file")
		rollups  = flag.String("rollups", "", "attach the telemetry plane to every simulation run and write merged rollup JSONL to this file (analyze with spider-trace -rollups)")
		telOver  = flag.String("teloverhead", "", "measure telemetry-plane overhead on the 1024-client dense rung and write the report to this file")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.NumCPU() // match the pool's own default; 0 would wedge the launcher
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *runList != "all" && *runList != "none" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var known []string
		for _, e := range registry {
			known = append(known, e.id)
		}
		sort.Strings(known)
		for id := range want {
			found := false
			for _, k := range known {
				if k == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(known, ", "))
				os.Exit(2)
			}
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintf(os.Stderr, "# pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "# pprof serving on http://%s/debug/pprof/\n", *pprofSrv)
	}

	var onEvent func(fleet.Event)
	if *progress {
		onEvent = progressPrinter()
	}
	pool := fleet.New(fleet.Config{Workers: *workers, Retries: 1, OnEvent: onEvent})
	defer pool.Close()

	// One collector shared by every experiment: each run files its event
	// stream under a canonical job label, and export is in sorted label
	// order, so the JSONL is byte-identical at any -workers value.
	var collector *obs.Collector
	if *events != "" || *spansOut != "" {
		collector = obs.NewCollector()
	}
	// Likewise one rollup collector: each run's telemetry aggregator files
	// its closed windows under the job label, merged in sorted order.
	var rollupCollector *telemetry.Collector
	if *rollups != "" {
		rollupCollector = telemetry.NewCollector()
	}

	var selected []experiment
	for _, e := range registry {
		if *runList != "all" && !want[e.id] {
			continue
		}
		selected = append(selected, e)
	}

	// SIGINT/SIGTERM turn into a graceful flush: experiments that already
	// finished still emit their results (atomically — a signal can never
	// leave a truncated artifact), unfinished ones are skipped, and the
	// process exits 128+signal instead of dying mid-write.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	var gotSig os.Signal

	// Experiments launch concurrently (bounded by the worker count) and
	// shard their simulation runs on the shared pool; emission below waits
	// on each in registry order, so stdout is byte-identical to a
	// sequential run.
	totalStart := time.Now()
	outcomes := make([]*outcome, len(selected))
	sem := make(chan struct{}, *workers)
	for i, e := range selected {
		oc := &outcome{done: make(chan struct{})}
		outcomes[i] = oc
		go func(e experiment, oc *outcome) {
			sem <- struct{}{}
			defer func() { <-sem }()
			group := pool.Group(e.id)
			opts := experiments.Options{Seed: *seed, Scale: *scale, Fleet: group, Events: collector, Rollups: rollupCollector}
			start := time.Now()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok {
						oc.err = err
					} else {
						oc.err = fmt.Errorf("%v", r)
					}
				}
				oc.wall = time.Since(start)
				oc.stats = group.Stats()
				close(oc.done)
			}()
			oc.outputs = e.run(opts)
		}(e, oc)
	}

	failures := 0
	skipped := 0
	var records []timingRecord
	for i, e := range selected {
		oc := outcomes[i]
		if gotSig == nil {
			select {
			case <-oc.done:
			case s := <-sigCh:
				gotSig = s
				fmt.Fprintf(os.Stderr, "# %v: flushing completed experiments and exiting\n", s)
			}
		}
		if gotSig != nil {
			// Only emit what already finished; never block on the rest.
			select {
			case <-oc.done:
			default:
				skipped++
				continue
			}
		}
		rec := timingRecord{
			ID:        e.id,
			Jobs:      oc.stats.Jobs,
			Failed:    oc.stats.Failed,
			CacheHits: oc.stats.CacheHits,
			JobWallMS: float64(oc.stats.JobWall.Microseconds()) / 1000,
			WallMS:    float64(oc.wall.Microseconds()) / 1000,
		}
		if oc.err != nil {
			failures++
			rec.Error = oc.err.Error()
			records = append(records, rec)
			fmt.Fprintf(os.Stderr, "# %s FAILED: %v\n", e.id, oc.err)
			continue
		}
		records = append(records, rec)
		for j, r := range oc.outputs {
			var body string
			ext := "txt"
			if *format == "csv" {
				body = r.CSV()
				ext = "csv"
			} else {
				body = r.Render()
			}
			if *outDir == "" {
				fmt.Print(body)
				fmt.Println()
				continue
			}
			name := e.id
			if len(oc.outputs) > 1 {
				name = fmt.Sprintf("%s-%d", e.id, j)
			}
			path := filepath.Join(*outDir, name+"."+ext)
			if err := atomicwrite.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", e.id, oc.wall.Round(time.Millisecond))
	}

	if *events != "" {
		if err := writeEvents(*events, collector); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# %d events (%d runs) written to %s\n",
			collector.Summary().Total(), len(collector.Runs()), *events)
	}
	if *spansOut != "" {
		if err := writeSpans(*spansOut, collector); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# %d spans (%d runs) written to %s\n",
			collector.SpanCount(), len(collector.SpanRuns()), *spansOut)
	}
	if *rollups != "" {
		if err := writeRollups(*rollups, rollupCollector); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# %d rollup windows (%d runs) written to %s\n",
			rollupCollector.WindowCount(), len(rollupCollector.Runs()), *rollups)
	}
	if *telOver != "" && gotSig == nil {
		if err := writeTelemetryOverhead(*telOver, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# telemetry overhead report written to %s\n", *telOver)
	}
	if *obsOver != "" && gotSig == nil {
		if err := writeObsOverhead(*obsOver, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# obs overhead report written to %s\n", *obsOver)
	}
	if *timings != "" {
		tf := timingsFile{
			Seed:        *seed,
			Scale:       *scale,
			Workers:     pool.Workers(),
			NumCPU:      runtime.NumCPU(),
			TotalWallMS: float64(time.Since(totalStart).Microseconds()) / 1000,
			Experiments: records,
		}
		for _, r := range records {
			tf.TotalJobs += r.Jobs
			tf.CacheHits += r.CacheHits
		}
		if err := os.MkdirAll(filepath.Dir(*timings), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		body, err := json.MarshalIndent(tf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := atomicwrite.WriteFile(*timings, append(body, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# timings written to %s\n", *timings)
	}
	if *popjson != "" && gotSig == nil {
		if err := writePopulationBench(*popjson, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# population bench written to %s\n", *popjson)
	}
	if *gate != "" && gotSig == nil {
		report, ok, err := runBenchGate(*gate, *seed, *scale, *gateThr, *allocThr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}
	if gotSig != nil {
		fmt.Fprintf(os.Stderr, "# interrupted by %v: %d experiment(s) flushed, %d skipped\n",
			gotSig, len(records), skipped)
		code := 1
		if s, ok := gotSig.(syscall.Signal); ok {
			code = 128 + int(s)
		}
		os.Exit(code)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "# %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

// measurePopulation runs the population benchmark ladder inline (no
// fleet: one run per rung, timed alone) and samples each rung's goodput,
// wall time, and allocation counts — the measurement behind both -popjson
// (record a baseline) and -benchgate (compare against one). Each rung
// reports the minimum over a few trials: the simulation is deterministic,
// so the minimum is the least-noise estimate of its true cost and keeps
// scheduler jitter from tripping the regression gate.
// The 32-client rung swaps in the production IPAM plan (shared pool
// hierarchy, backup failover, sim-time lease GC) under the same radio
// workload, so address-management cost regressions gate independently of
// the plain data-path rungs. The 256 and 1024 rungs use the dense-stagger
// city-scale scenario (the classic 1.5 s spacing would leave most of the
// population off the road) and run a single trial — at that size the run
// is long enough that scheduler jitter is a rounding error. Rungs match
// by client count and benchgate ignores rungs present in only one file,
// so older baselines that predate a rung still compare cleanly.
func measurePopulation(seed int64, scale float64) benchgate.File {
	o := experiments.Options{Seed: seed, Scale: scale}
	out := benchgate.File{Seed: seed, Scale: scale, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	rungs := []struct {
		n         int
		trials    int
		scenario  func(experiments.Options, int) (core.WorldConfig, []core.ClientConfig)
		telemetry bool
	}{
		{1, 3, experiments.PopulationScenario, false},
		{8, 3, experiments.PopulationScenario, false},
		{32, 3, experiments.PopulationIPAMScenario, false},
		{64, 3, experiments.PopulationScenario, false},
		{256, 1, experiments.PopulationDenseScenario, false},
		// The 512 rung runs the dense scenario with the full telemetry
		// plane attached (streaming recorder, rollups, flight recorder,
		// SLO evaluation), so telemetry-path cost regressions gate
		// independently of the bare data-path rungs. Matched by client
		// count like every other rung — 512 is unique to this arm.
		{512, 1, experiments.PopulationDenseScenario, true},
		{1024, 1, experiments.PopulationDenseScenario, false},
	}
	for _, rung := range rungs {
		n := rung.n
		var rec benchgate.Record
		for trial := 0; trial < rung.trials; trial++ {
			world, clients := rung.scenario(o, n)
			if rung.telemetry {
				world.Telemetry = telemetry.New(telemetry.Config{Seed: seed, SLOs: telemetry.DefaultSLOs()})
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			p := core.RunPopulation(world, clients)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			sample := benchgate.Record{
				Clients:       n,
				Telemetry:     rung.telemetry,
				AggregateKBps: p.AggregateKBps,
				JainFairness:  p.JainFairness,
				WallNS:        wall.Nanoseconds(),
				NSPerClient:   wall.Nanoseconds() / int64(n),
				Allocs:        after.Mallocs - before.Mallocs,
				AllocBytes:    after.TotalAlloc - before.TotalAlloc,
			}
			if trial == 0 || sample.WallNS < rec.WallNS {
				rec.WallNS, rec.NSPerClient = sample.WallNS, sample.NSPerClient
			}
			if trial == 0 || sample.Allocs < rec.Allocs {
				rec.Allocs, rec.AllocBytes = sample.Allocs, sample.AllocBytes
			}
			rec.Clients = sample.Clients
			rec.Telemetry = sample.Telemetry
			rec.AggregateKBps = sample.AggregateKBps
			rec.JainFairness = sample.JainFairness
		}
		rec.AllocsPerClient = rec.Allocs / uint64(n)
		fmt.Fprintf(os.Stderr, "# population bench: clients=%-4d wall=%v allocs=%d (%d/client)\n",
			n, time.Duration(rec.WallNS).Round(time.Millisecond), rec.Allocs, rec.AllocsPerClient)
		out.Records = append(out.Records, rec)
	}
	return out
}

// writePopulationBench records a fresh population baseline file.
func writePopulationBench(path string, seed int64, scale float64) error {
	body, err := json.MarshalIndent(measurePopulation(seed, scale), "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return atomicwrite.WriteFile(path, append(body, '\n'), 0o644)
}

// runBenchGate measures the population rungs fresh, compares them against
// the committed baseline, and returns the rendered verdict plus whether
// the gate passed. Wall-time comparisons only mean something on hardware
// comparable to the baseline's; CI re-records its baseline on the same
// machine before gating.
func runBenchGate(baselinePath string, seed int64, scale float64, threshold, allocThreshold float64) (string, bool, error) {
	baseline, err := benchgate.Load(baselinePath)
	if err != nil {
		return "", false, err
	}
	// Gate against the baseline's own workload: a -scale mismatch would
	// otherwise just error out in Compare.
	if seed == 1 && scale == 1.0 {
		seed, scale = baseline.Seed, baseline.Scale
	}
	current := measurePopulation(seed, scale)
	regs, err := benchgate.Compare(baseline, current, threshold, allocThreshold)
	if err != nil {
		return "", false, err
	}
	return benchgate.Report(baseline, current, regs, threshold, allocThreshold), len(regs) == 0, nil
}

// writeEvents exports the collector's merged event streams as JSONL, one
// object per event, runs in sorted label order. The artifact carries only
// sim-time timestamps, so repeated runs at any worker count produce
// byte-identical files.
func writeEvents(path string, c *obs.Collector) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := atomicwrite.Create(path, 0o644)
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// writeSpans exports the collector's merged causal spans as JSONL in the
// same canonical order as the event export: runs sorted by label, spans in
// recorded (Start, Client, ID) order within each run.
func writeSpans(path string, c *obs.Collector) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := atomicwrite.Create(path, 0o644)
	if err != nil {
		return err
	}
	if err := c.WriteSpansJSONL(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// writeRollups exports the merged rollup JSONL: every run's windows then
// its flight accounting, runs in sorted label order. Sim-time only, so
// the artifact is byte-identical at any -workers value.
func writeRollups(path string, c *telemetry.Collector) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := atomicwrite.Create(path, 0o644)
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// writeTelemetryOverhead times the 1024-client dense-stagger rung — the
// city-scale workload the telemetry plane is sized for — with the plane
// detached and attached, and reports the relative cost plus the evidence
// that memory stayed bounded (window count, flight occupancy vs caps).
//
// Protocol: after one untimed warm-up per arm, the arms run as interleaved
// pairs whose within-pair order alternates, each timed region preceded by
// a forced GC, and the verdict compares the per-arm SUMS of wall clock and
// process CPU time (getrusage, user+system) across all pairs. Sums — not
// a per-pair median or a per-arm minimum — because single runs of this
// rung are ~300ms and machine noise on a busy box is ±10% of that;
// summing over many alternating pairs cancels position effects and
// averages the noise, which single-run estimators provably do not (the
// same binary measured 1% and 14% on consecutive min-of-3 attempts). CPU
// time is reported next to wall because it is immune to involuntary
// scheduling gaps and so tends to be the steadier of the two.
func writeTelemetryOverhead(path string, seed int64, scale float64) error {
	o := experiments.Options{Seed: seed, Scale: scale}
	const denseClients = 1024

	cpuNow := func() time.Duration {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			return 0
		}
		return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
	}
	run := func(attach bool) (wall, cpu time.Duration, alloc uint64, tel *telemetry.Aggregator) {
		world, clients := experiments.PopulationDenseScenario(o, denseClients)
		if attach {
			tel = telemetry.New(telemetry.Config{Seed: seed, SLOs: telemetry.DefaultSLOs()})
		}
		world.Telemetry = tel
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		c0 := cpuNow()
		start := time.Now()
		core.RunPopulation(world, clients)
		wall = time.Since(start)
		cpu = cpuNow() - c0
		runtime.ReadMemStats(&after)
		return wall, cpu, after.TotalAlloc - before.TotalAlloc, tel
	}
	run(false)
	run(true)
	const pairs = 16
	var off, on, offCPU, onCPU time.Duration
	var offAlloc, onAlloc uint64
	var tel *telemetry.Aggregator
	for i := 0; i < pairs; i++ {
		runPair := func(attach bool) {
			w, c, a, t := run(attach)
			if attach {
				on, onCPU, onAlloc, tel = on+w, onCPU+c, onAlloc+a, t
			} else {
				off, offCPU, offAlloc = off+w, offCPU+c, offAlloc+a
			}
		}
		runPair(i%2 == 0)
		runPair(i%2 != 0)
	}
	overhead := float64(on-off) / float64(off) * 100
	cpuOverhead := float64(onCPU-offCPU) / float64(offCPU) * 100
	fc := tel.FlightCounters()

	var b strings.Builder
	fmt.Fprintf(&b, "telemetry overhead: %d-client dense-stagger rung, seed=%d scale=%g, sums over %d interleaved pairs (alternating order, GC before each timed run)\n",
		denseClients, seed, scale, pairs)
	fmt.Fprintf(&b, "telemetry detached: %v wall, %v cpu per run (%d MB allocated)\n",
		(off / pairs).Round(time.Millisecond), (offCPU / pairs).Round(time.Millisecond), offAlloc/pairs>>20)
	fmt.Fprintf(&b, "telemetry attached: %v wall, %v cpu per run (%d MB allocated)\n",
		(on / pairs).Round(time.Millisecond), (onCPU / pairs).Round(time.Millisecond), onAlloc/pairs>>20)
	fmt.Fprintf(&b, "overhead: %+.2f%% wall, %+.2f%% cpu, %+.1f%% allocated bytes\n",
		overhead, cpuOverhead, float64(int64(onAlloc)-int64(offAlloc))/float64(offAlloc)*100)
	fmt.Fprintf(&b, "bounded state: %d rollup windows (%d dropped), flight %d/%d events %d/%d spans, %d clients sampled\n",
		len(tel.Windows()), tel.DroppedWindows(),
		fc.EventsKept, fc.EventCap, fc.SpansKept, fc.SpanCap, fc.ClientsSampled)
	if overhead < 3 {
		fmt.Fprintf(&b, "verdict: PASS (< 3%% wall overhead)\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (>= 3%% wall overhead)\n")
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := atomicwrite.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	if overhead >= 3 {
		return fmt.Errorf("telemetry overhead %.2f%% exceeds the 3%% budget", overhead)
	}
	return nil
}

// writeObsOverhead times the chaos scenario (the event-densest workload)
// with recording disabled and enabled and reports the relative cost of the
// observability layer. One warm-up run absorbs JIT-ish effects (page
// faults, allocator growth) before either timed arm.
func writeObsOverhead(path string, seed int64, scale float64) error {
	o := experiments.Options{Seed: seed, Scale: scale}
	cfg := experiments.ChaosScenario(o)

	run := func(record bool) (time.Duration, int64) {
		c := cfg
		var rec *obs.Recorder
		if record {
			rec = obs.NewRecorder()
		}
		c.Obs = rec
		start := time.Now()
		core.Run(c)
		return time.Since(start), rec.Summary().Total()
	}
	// One untimed warm-up per arm, then interleaved trials with the
	// per-arm minimum taken: the minimum is the least-noise estimate of a
	// deterministic workload's true cost, and interleaving keeps slow
	// drift (thermal, allocator growth) from biasing one arm.
	run(false)
	run(true)
	const trials = 5
	off, on := time.Duration(1<<62), time.Duration(1<<62)
	var events int64
	for i := 0; i < trials; i++ {
		if d, _ := run(false); d < off {
			off = d
		}
		d, n := run(true)
		if d < on {
			on = d
		}
		events = n
	}
	overhead := float64(on-off) / float64(off) * 100

	var b strings.Builder
	fmt.Fprintf(&b, "obs overhead: chaos scenario, seed=%d scale=%g, min of %d interleaved trials per arm\n", seed, scale, trials)
	fmt.Fprintf(&b, "recording disabled: %v per run\n", off.Round(time.Microsecond))
	fmt.Fprintf(&b, "recording enabled:  %v per run (%d events)\n", on.Round(time.Microsecond), events)
	fmt.Fprintf(&b, "overhead: %+.1f%%\n", overhead)
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return atomicwrite.WriteFile(path, []byte(b.String()), 0o644)
}

// progressPrinter renders fleet telemetry as throttled stderr lines:
// queue depth, completions, cache traffic, and the pool's ETA.
func progressPrinter() func(fleet.Event) {
	var mu sync.Mutex
	var last time.Time
	return func(ev fleet.Event) {
		switch ev.Type {
		case fleet.JobDone, fleet.JobFailed, fleet.CacheHit:
		default:
			return
		}
		mu.Lock()
		defer mu.Unlock()
		// Always report failures and cache hits; throttle the steady
		// completion stream.
		if ev.Type == fleet.JobDone && time.Since(last) < 250*time.Millisecond {
			return
		}
		last = time.Now()
		s := ev.Stats
		line := fmt.Sprintf("[fleet] %s %s", ev.Type, ev.Job)
		if ev.Group != "" {
			line = fmt.Sprintf("[fleet] %s %s/%s", ev.Type, ev.Group, ev.Job)
		}
		if ev.Wall > 0 {
			line += fmt.Sprintf(" in %v", ev.Wall.Round(time.Millisecond))
		}
		line += fmt.Sprintf("  queued=%d running=%d done=%d", s.Queued, s.Running, s.Done)
		if s.Failed > 0 {
			line += fmt.Sprintf(" failed=%d", s.Failed)
		}
		if s.CacheHits > 0 {
			line += fmt.Sprintf(" cache-hits=%d", s.CacheHits)
		}
		if !s.Health.Empty() {
			line += fmt.Sprintf(" faults=%d recovered=%d drops=%d",
				s.Health.Faults, s.Health.Recoveries, s.Health.LinkDrops)
		}
		if !s.Events.Empty() {
			line += fmt.Sprintf(" events=%d", s.Events.Total())
		}
		if s.ETA > 0 {
			line += fmt.Sprintf(" eta=%v", s.ETA.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
