package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spider/internal/benchgate"
)

// TestBenchGateFailsOnSkewedBaseline is the acceptance check for the
// gate's failure path: against a baseline whose costs are recorded as
// impossibly low (so the fresh measurement necessarily regresses past any
// threshold), runBenchGate must report failure — the bit main turns into
// a non-zero exit.
func TestBenchGateFailsOnSkewedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the population rungs")
	}
	const seed, scale = int64(1), 0.05
	fresh := measurePopulation(seed, scale)

	skewed := fresh
	skewed.Records = make([]benchgate.Record, len(fresh.Records))
	copy(skewed.Records, fresh.Records)
	for i := range skewed.Records {
		skewed.Records[i].WallNS /= 10
		skewed.Records[i].NSPerClient /= 10
		skewed.Records[i].Allocs /= 10
		skewed.Records[i].AllocBytes /= 10
	}
	path := filepath.Join(t.TempDir(), "skewed.json")
	body, err := json.Marshal(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	report, ok, err := runBenchGate(path, seed, scale, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("gate passed against a 10x-skewed baseline:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("failing gate report lacks FAIL marker:\n%s", report)
	}
}

// TestBenchGatePassesAgainstSelf pins the complementary path: a baseline
// recorded by the same measurement on the same machine moments earlier
// passes a 15% gate (allocation counts are deterministic; wall time only
// sees same-machine noise).
func TestBenchGatePassesAgainstSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the population rungs twice")
	}
	const seed, scale = int64(1), 0.05
	path := filepath.Join(t.TempDir(), "base.json")
	if err := writePopulationBench(path, seed, scale); err != nil {
		t.Fatal(err)
	}
	report, ok, err := runBenchGate(path, seed, scale, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("gate failed against a just-recorded baseline:\n%s", report)
	}
}
