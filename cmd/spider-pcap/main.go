// Command spider-pcap summarizes a frame capture produced by
// spider-sim -pcap (or any core.ScenarioConfig.PCAP writer): frame counts
// by type, top transmitters, retry fraction, and the capture's time span.
//
// Usage:
//
//	spider-sim -duration 1m -pcap run.pcap
//	spider-pcap run.pcap
package main

import (
	"fmt"
	"os"
	"sort"

	"spider/internal/capture"
	"spider/internal/dot11"
	"spider/internal/sim"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: spider-pcap <file.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	pkts, err := capture.ReadAll(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(pkts) == 0 {
		fmt.Println("empty capture")
		return
	}

	byType := map[dot11.FrameType]int{}
	bySender := map[dot11.MACAddr]int{}
	bytesBySender := map[dot11.MACAddr]int{}
	retries, undecodable, totalBytes := 0, 0, 0
	var first, last sim.Time
	first = pkts[0].At
	for _, p := range pkts {
		last = p.At
		fr, err := dot11.Decode(p.Data)
		if err != nil {
			undecodable++
			continue
		}
		byType[fr.Type]++
		bySender[fr.Addr2]++
		bytesBySender[fr.Addr2] += len(p.Data)
		totalBytes += len(p.Data)
		if fr.Retry {
			retries++
		}
	}

	span := (last - first).Seconds()
	fmt.Printf("capture: %d frames, %.1f KiB over %.1fs (%.1f frames/s)\n",
		len(pkts), float64(totalBytes)/1024, span, float64(len(pkts))/max(span, 1e-9))
	if undecodable > 0 {
		fmt.Printf("undecodable: %d\n", undecodable)
	}
	fmt.Printf("retries: %d (%.1f%%)\n", retries, 100*float64(retries)/float64(len(pkts)))

	fmt.Println("\nframes by type:")
	var types []dot11.FrameType
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return byType[types[i]] > byType[types[j]] })
	for _, t := range types {
		fmt.Printf("  %-12v %8d\n", t, byType[t])
	}

	fmt.Println("\ntop transmitters:")
	var senders []dot11.MACAddr
	for s := range bySender {
		senders = append(senders, s)
	}
	sort.Slice(senders, func(i, j int) bool {
		if bySender[senders[i]] != bySender[senders[j]] {
			return bySender[senders[i]] > bySender[senders[j]]
		}
		return senders[i].String() < senders[j].String()
	})
	for i, s := range senders {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(senders)-10)
			break
		}
		fmt.Printf("  %v  %8d frames  %8.1f KiB\n", s, bySender[s], float64(bytesBySender[s])/1024)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
