// Command spider-serve runs the crash-safe long-running service mode: a
// daemon owning one live scenario, advancing virtual time in bounded
// quanta, accepting external inputs over HTTP, and journaling every
// input to a write-ahead intent log so a crash (or SIGKILL) loses
// nothing that was ever acknowledged. Restarting with the same state
// directory restores the world by deterministic replay and continues —
// the resumed event/span streams are byte-identical to an uninterrupted
// run's (see DESIGN.md §12).
//
// Quickstart:
//
//	spider-serve -dir /tmp/spider-state -config examples/serve/corridor.json
//	curl localhost:7788/v1/status
//	curl -X POST localhost:7788/v1/intents -d '{"kind":"inject-chaos","chaos":{"Name":"demo","Events":[{"Kind":1,"AP":0,"Duration":5000000000}]}}'
//	curl -X POST localhost:7788/v1/shutdown
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"spider/internal/atomicwrite"
	"spider/internal/obs"
	"spider/internal/serve"
	"spider/internal/sim"
)

func main() {
	var (
		dir      = flag.String("dir", "", "state directory (config, WAL, snapshot, artifacts); required")
		config   = flag.String("config", "", "world spec JSON (required on first boot of a directory)")
		listen   = flag.String("listen", "127.0.0.1:7788", "HTTP listen address (empty disables the API)")
		quantum  = flag.Duration("quantum", time.Second, "virtual time per loop step")
		pace     = flag.Float64("pace", 0, "virtual/wall speed factor (0 = free-running)")
		until    = flag.Duration("until", 0, "stop after this much virtual time (0 = spec horizon)")
		queue    = flag.Int("queue", 64, "control queue depth (full queue answers 429)")
		reqDL    = flag.Duration("deadline", 2*time.Second, "per-request wall deadline (503 past it)")
		stepDL   = flag.Duration("step-deadline", 5*time.Second, "wall budget per step before a serve.stall event")
		ckptEach = flag.Duration("checkpoint-every", 30*time.Second, "virtual checkpoint cadence")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "spider-serve: -dir is required")
		os.Exit(2)
	}

	var spec *serve.WorldSpec
	if *config != "" {
		b, err := os.ReadFile(*config)
		if err != nil {
			fatal(err)
		}
		spec = new(serve.WorldSpec)
		if err := json.Unmarshal(b, spec); err != nil {
			fatal(fmt.Errorf("%s: %w", *config, err))
		}
	}

	srv, err := serve.Open(*dir, spec)
	if err != nil {
		fatal(err)
	}
	if restored := srv.Restored(); restored > 0 {
		fmt.Printf("spider-serve: restored to virtual %s (%d intents applied)\n", restored, srv.Applied())
	}

	d := serve.NewDaemon(srv, serve.DaemonConfig{
		Quantum:         sim.Time(*quantum),
		Until:           sim.Time(*until),
		Pace:            *pace,
		QueueLen:        *queue,
		RequestDeadline: *reqDL,
		StepDeadline:    *stepDL,
		CheckpointEvery: sim.Time(*ckptEach),
	})

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		httpSrv = &http.Server{Handler: d.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		fmt.Printf("spider-serve: listening on http://%s (hash %s)\n", ln.Addr(), srv.Hash())
	}

	loopErr := make(chan error, 1)
	go func() { loopErr <- d.Run(ctx) }()
	err = <-loopErr

	if httpSrv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = httpSrv.Shutdown(sctx)
		scancel()
	}
	if err != nil {
		fatal(err)
	}

	// Publish the run's deterministic artifacts. Finalize seals open
	// spans at the drain clock; replays of the same WAL to the same
	// clock produce byte-identical files.
	srv.Scenario().Finalize()
	if err := writeArtifacts(*dir, srv); err != nil {
		fatal(err)
	}
	fmt.Printf("spider-serve: drained at virtual %s, %d intents applied, artifacts in %s\n",
		srv.Now(), srv.Applied(), *dir)
}

// writeArtifacts atomically publishes the event, span, and daemon
// lifecycle JSONL streams into the state directory.
func writeArtifacts(dir string, srv *serve.Server) error {
	write := func(name string, emit func(f *atomicwrite.File) error) error {
		f, err := atomicwrite.Create(filepath.Join(dir, name), 0o644)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Abort()
			return err
		}
		return f.Commit()
	}
	if err := write("events.jsonl", func(f *atomicwrite.File) error {
		return obs.WriteJSONL(f, "", srv.Recorder().Events())
	}); err != nil {
		return err
	}
	if err := write("spans.jsonl", func(f *atomicwrite.File) error {
		return obs.WriteSpansJSONL(f, "", srv.Recorder().Spans())
	}); err != nil {
		return err
	}
	return write("lifecycle.jsonl", func(f *atomicwrite.File) error {
		return obs.WriteJSONL(f, "", srv.Lifecycle().Events())
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spider-serve:", err)
	os.Exit(1)
}
