// Command spider-model explores the paper's analytical join model (Eq. 5-7)
// and the throughput-maximization framework (Eq. 8-10) from the command
// line.
//
// Usage:
//
//	spider-model join -betamax 5s -t 4s            # p(f, t) curve
//	spider-model join -fi 0.25 -validate           # closed form vs Monte-Carlo
//	spider-model schedule -joined 0.75 -avail 0.25 # optimal schedule vs speed
//	spider-model divide                            # dividing speeds per split
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spider"
	"spider/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "join":
		joinCmd(os.Args[2:])
	case "schedule":
		scheduleCmd(os.Args[2:])
	case "divide":
		divideCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spider-model {join|schedule|divide} [flags]")
	os.Exit(2)
}

func joinCmd(args []string) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	betaMax := fs.Duration("betamax", 5*time.Second, "maximum AP response time")
	t := fs.Duration("t", 4*time.Second, "time in range")
	fi := fs.Float64("fi", 0, "single fraction to evaluate (0 = sweep)")
	validate := fs.Bool("validate", false, "also run the Monte-Carlo simulation")
	trials := fs.Int("trials", 10000, "Monte-Carlo trials")
	seed := fs.Int64("seed", 1, "Monte-Carlo seed")
	fs.Parse(args)

	m := spider.PaperJoinModel(*betaMax)
	rng := sim.NewRNG(*seed)
	eval := func(f float64) {
		p := m.JoinProbability(f, *t)
		if *validate {
			s := m.SimulateJoinProbability(rng, f, *t, *trials)
			fmt.Printf("f=%.2f  model=%.4f  sim=%.4f\n", f, p, s)
		} else {
			fmt.Printf("f=%.2f  p=%.4f\n", f, p)
		}
	}
	if *fi > 0 {
		eval(*fi)
		return
	}
	fmt.Printf("# join probability, βmax=%v, t=%v, D=500ms, w=7ms, c=100ms, h=0.10\n", *betaMax, *t)
	for f := 0.05; f <= 1.0001; f += 0.05 {
		eval(f)
	}
}

func scheduleCmd(args []string) {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	joined := fs.Float64("joined", 0.75, "fraction of Bw already joined on channel 1")
	avail := fs.Float64("avail", 0.25, "fraction of Bw available (unjoined) on channel 2")
	bw := fs.Float64("bw", 11e6, "wireless bandwidth (bps)")
	betaMax := fs.Duration("betamax", 10*time.Second, "maximum AP response time")
	rng := fs.Float64("range", 100, "radio range (m)")
	step := fs.Float64("step", 0.02, "schedule fraction granularity")
	fs.Parse(args)

	m := spider.PaperJoinModel(*betaMax)
	fmt.Printf("# optimal schedule, joined=%.0f%% avail=%.0f%% of %.0f Mbps\n", *joined*100, *avail*100, *bw/1e6)
	fmt.Printf("%-10s %-8s %-8s %-12s %-12s %-12s\n", "speed", "f1", "f2", "ch1 (kbps)", "ch2 (kbps)", "total")
	for _, v := range []float64{2.5, 3.3, 5, 6.6, 10, 20} {
		T := spider.Time(2 * *rng / v * 1e9)
		sol := spider.OptimalSchedule(spider.ScheduleProblem{
			Model: m, Bw: *bw, T: T,
			Channels: []spider.ChannelInput{{Joined: *joined * *bw}, {Available: *avail * *bw}},
		}, *step)
		fmt.Printf("%-10.1f %-8.2f %-8.2f %-12.0f %-12.0f %-12.0f\n",
			v, sol.F[0], sol.F[1], sol.PerChannelBps[0]/1000, sol.PerChannelBps[1]/1000, sol.TotalBps/1000)
	}
}

func divideCmd(args []string) {
	fs := flag.NewFlagSet("divide", flag.ExitOnError)
	bw := fs.Float64("bw", 11e6, "wireless bandwidth (bps)")
	betaMax := fs.Duration("betamax", 10*time.Second, "maximum AP response time")
	fs.Parse(args)

	m := spider.PaperJoinModel(*betaMax)
	fmt.Println("# speed above which a single channel is (near-)optimal")
	for _, sp := range []struct {
		name          string
		joined, avail float64
	}{{"25/75", 0.25, 0.75}, {"50/50", 0.5, 0.5}, {"75/25", 0.75, 0.25}} {
		div := spider.DividingSpeed(m, *bw,
			[]spider.ChannelInput{{Joined: sp.joined * *bw}, {Available: sp.avail * *bw}},
			100, 2.5, 25, 1.25, 0.02)
		fmt.Printf("split %-6s dividing speed ≈ %.2f m/s\n", sp.name, div)
	}
}
