// Command spider-sim runs one Spider scenario and prints its measurements.
//
// Usage:
//
//	spider-sim -preset ch1-multi -duration 10m -speed 10 -aps-per-km 10
//	spider-sim -preset stock -seed 7 -open-fraction 0.5
//
// The scenario is the standard evaluation town: a 1.2 km × 0.6 km block
// loop with Poisson roadside APs in the paper's measured channel mix.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"spider"
)

var presets = map[string]spider.Preset{
	"ch1-multi":    spider.SingleChannelMultiAP,
	"ch1-single":   spider.SingleChannelSingleAP,
	"multi-multi":  spider.MultiChannelMultiAP,
	"multi-single": spider.MultiChannelSingleAP,
	"stock":        spider.Stock,
	"adaptive":     spider.Adaptive,
	"predictive":   spider.Predictive,
}

func main() {
	var (
		presetName   = flag.String("preset", "ch1-multi", "configuration: ch1-multi, ch1-single, multi-multi, multi-single, stock, adaptive")
		duration     = flag.Duration("duration", 10*time.Minute, "simulated duration")
		seed         = flag.Int64("seed", 1, "random seed")
		speed        = flag.Float64("speed", 10, "vehicle speed (m/s)")
		apsPerKm     = flag.Float64("aps-per-km", 10, "AP deployment density")
		openFraction = flag.Float64("open-fraction", 0.4, "fraction of open APs")
		channel      = flag.Uint("channel", 1, "primary channel for single-channel presets")
		verbose      = flag.Bool("v", false, "print join log")
		pcapPath     = flag.String("pcap", "", "write an on-air frame capture to this pcap file")
	)
	flag.Parse()

	preset, ok := presets[*presetName]
	if !ok {
		var names []string
		for n := range presets {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "unknown preset %q; options: %v\n", *presetName, names)
		os.Exit(2)
	}

	loop := []spider.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	route := append(append([]spider.Point(nil), loop...), loop[0])
	deploy := spider.DefaultDeploy()
	deploy.APsPerKm = *apsPerKm
	deploy.OpenFraction = *openFraction
	sites := spider.Deploy(*seed, route, deploy)

	fmt.Printf("town: %d APs (%.0f/km, %.0f%% open), loop %.1f km, speed %.1f m/s\n",
		len(sites), *apsPerKm, *openFraction*100, 3.6, *speed)

	cfg := spider.ScenarioConfig{
		Seed:           *seed,
		Duration:       *duration,
		Preset:         preset,
		PrimaryChannel: spider.Channel(*channel),
		Mobility:       spider.Route(loop, *speed, true),
		Sites:          sites,
	}
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.PCAP = f
	}
	res := spider.Run(cfg)

	fmt.Printf("\n=== %v, %v simulated ===\n", res.Preset, res.Duration)
	fmt.Printf("throughput:    %8.1f KB/s\n", res.ThroughputKBps)
	fmt.Printf("connectivity:  %8.1f %%\n", res.Connectivity*100)
	fmt.Printf("bytes:         %8d\n", res.BytesReceived)
	fmt.Printf("links up/down: %d/%d\n", res.LinkUps, res.LinkDowns)
	fmt.Printf("joins: started=%d complete=%d assoc-fail=%d dhcp-fail=%d ping-fail=%d cache-hits=%d\n",
		res.LMM.JoinsStarted, res.LMM.JoinsComplete, res.LMM.AssocFailures,
		res.LMM.DHCPFailures, res.LMM.PingFailures, res.LMM.CacheHits)
	fmt.Printf("driver: switches=%d psm=%d polls=%d queued=%d drops=%d\n",
		res.Driver.Switches, res.Driver.PSMSent, res.Driver.PollsSent,
		res.Driver.TxQueued, res.Driver.TxQueueDrops)

	var ks []int
	for k := range res.LinkSeconds {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	fmt.Print("concurrent links: ")
	for _, k := range ks {
		fmt.Printf("%d×%ds ", k, res.LinkSeconds[k])
	}
	fmt.Println()

	if *verbose {
		fmt.Println("\njoin log:")
		for _, j := range res.Joins {
			fmt.Printf("  t=%8v %v %v %-12v assoc=%v dhcp=%v total=%v cache=%v\n",
				j.Start.Round(time.Millisecond), j.BSSID, j.Channel, j.Stage,
				j.AssocDur.Round(time.Millisecond), j.DHCPDur.Round(time.Millisecond),
				j.TotalDur.Round(time.Millisecond), j.UsedCache)
		}
	}
}
