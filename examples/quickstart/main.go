// Quickstart: drive a Spider client past three roadside APs and print what
// it achieved.
//
//	go run ./examples/quickstart
//
// This exercises the whole stack — PHY, 802.11 join handshake, DHCP, PSM
// buffering, TCP downloads through rate-limited backhauls — on a scenario
// small enough to read end to end.
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	// Three open APs along a 1 km road, all on channel 1, with modest
	// residential backhauls.
	sites := []spider.APSite{
		{Pos: spider.Point{X: 200, Y: 20}, Channel: spider.Channel1, SSID: "cafe", Open: true, BackhaulBps: 2e6},
		{Pos: spider.Point{X: 500, Y: -30}, Channel: spider.Channel1, SSID: "library", Open: true, BackhaulBps: 1.5e6},
		{Pos: spider.Point{X: 520, Y: 35}, Channel: spider.Channel1, SSID: "house-42", Open: true, BackhaulBps: 1e6},
	}
	// A vehicle crossing at 10 m/s (~22 mph, the paper's dividing speed).
	route := spider.Route([]spider.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}, 10, false)

	res := spider.Run(spider.ScenarioConfig{
		Seed:     42,
		Duration: 100 * time.Second,
		Preset:   spider.SingleChannelMultiAP, // Spider's throughput-optimal mode
		Mobility: route,
		Sites:    sites,
	})

	fmt.Println("Spider quickstart — 1 km drive past 3 APs on channel 1")
	fmt.Printf("  downloaded:    %.1f KiB\n", float64(res.BytesReceived)/1024)
	fmt.Printf("  avg throughput: %.1f KB/s\n", res.ThroughputKBps)
	fmt.Printf("  connectivity:  %.0f%% of the drive\n", res.Connectivity*100)
	fmt.Printf("  links established: %d\n", res.LinkUps)
	fmt.Println("\n  join log:")
	for _, j := range res.Joins {
		fmt.Printf("    t=%-7v %-8v assoc %-6v dhcp %-6v -> %v\n",
			j.Start.Round(time.Millisecond), j.Channel,
			j.AssocDur.Round(time.Millisecond), j.DHCPDur.Round(time.Millisecond), j.Stage)
	}
	// Around x=500 the client is inside two APs' range at once; Spider
	// holds both links concurrently because they share a channel.
	fmt.Println("\n  seconds at k concurrent links:")
	for k := 0; k <= 3; k++ {
		if secs, ok := res.LinkSeconds[k]; ok {
			fmt.Printf("    %d links: %ds\n", k, secs)
		}
	}
}
