// Striping: the data-striping extension in action. A stationary client in
// range of three modest APs on one channel downloads 4 MiB objects — first
// over its best single AP, then block-striped across all three links at
// once, the way the paper's related-work section suggests integrating
// Horde/MAR/PERM-style striping with Spider.
//
//	go run ./examples/striping
package main

import (
	"fmt"
	"time"

	"spider"
	"spider/internal/stats"
)

func run(preset spider.Preset) spider.Result {
	sites := []spider.APSite{
		{Pos: spider.Point{X: 10, Y: 0}, Channel: spider.Channel1, SSID: "alpha", Open: true, BackhaulBps: 2e6},
		{Pos: spider.Point{X: 13, Y: 0}, Channel: spider.Channel1, SSID: "beta", Open: true, BackhaulBps: 1.5e6},
		{Pos: spider.Point{X: 16, Y: 0}, Channel: spider.Channel1, SSID: "gamma", Open: true, BackhaulBps: 1e6},
	}
	return spider.Run(spider.ScenarioConfig{
		Seed:              11,
		Duration:          3 * time.Minute,
		Preset:            preset,
		Mobility:          spider.StaticClient(spider.Point{}),
		Sites:             sites,
		StripeObjectBytes: 4 << 20,
	})
}

func main() {
	fmt.Println("striping demo: 4 MiB objects, 3 APs on channel 1 (2 + 1.5 + 1 Mbit/s)")
	fmt.Printf("%-28s %8s %16s %12s\n", "mode", "objects", "median latency", "throughput")
	for _, cfg := range []struct {
		name   string
		preset spider.Preset
	}{
		{"single best AP", spider.SingleChannelSingleAP},
		{"striped across all links", spider.SingleChannelMultiAP},
	} {
		res := run(cfg.preset)
		med := stats.Summarize(res.StripeObjectSecs).Median
		fmt.Printf("%-28s %8d %13.1f s %8.1f KB/s\n",
			cfg.name, res.StripeObjects, med, res.ThroughputKBps)
	}
	fmt.Println("\nstriping aggregates the three backhauls; block reassignment keeps a dying")
	fmt.Println("link from stalling the object (see internal/stripe for the scheduler).")
}
