// Commute: the encounter-history extension. A commuter loops the same
// blocks every day; each road segment's usable APs happen to sit on one
// channel. The predictive planner explores on the first lap, then plans
// its channel ahead of its own position — compare it against the static
// single-channel and rotating schedules on the identical town.
//
//	go run ./examples/commute
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	// A block loop where each side's APs live on one channel.
	loop := []spider.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	chans := []spider.Channel{spider.Channel1, spider.Channel6, spider.Channel11, spider.Channel6}
	closed := append(append([]spider.Point(nil), loop...), loop[0])
	var sites []spider.APSite
	for seg := 0; seg < 4; seg++ {
		a, b := closed[seg], closed[seg+1]
		for f := 0.125; f < 1; f += 0.25 {
			p := spider.Point{
				X: a.X + (b.X-a.X)*f,
				Y: a.Y + (b.Y-a.Y)*f + 20,
			}
			sites = append(sites, spider.APSite{
				Pos: p, Channel: chans[seg],
				SSID: fmt.Sprintf("blk%d-%0.0f", seg, f*100), Open: true, BackhaulBps: 3e6,
			})
		}
	}
	fmt.Println("commute demo: 16 APs, channel segregated per block side, 10 m/s, 18 min (~3 laps)")
	fmt.Printf("%-28s %12s %14s\n", "mode", "throughput", "connectivity")
	for _, cfg := range []struct {
		name   string
		preset spider.Preset
	}{
		{"static single-channel (ch6)", spider.SingleChannelMultiAP},
		{"static rotation", spider.MultiChannelMultiAP},
		{"predictive planner", spider.Predictive},
	} {
		res := spider.Run(spider.ScenarioConfig{
			Seed:           5,
			Duration:       18 * time.Minute,
			Preset:         cfg.preset,
			PrimaryChannel: spider.Channel6,
			Mobility:       spider.Route(loop, 10, true),
			Sites:          sites,
		})
		fmt.Printf("%-28s %8.1f KB/s %12.1f %%\n",
			cfg.name, res.ThroughputKBps, res.Connectivity*100)
	}
	fmt.Println("\nthe planner learns each block's channel on lap 1 and rides the right")
	fmt.Println("channel thereafter — full dwell like single-channel, coverage like rotation.")
}
