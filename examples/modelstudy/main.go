// Modelstudy: the analytical side of the paper without any packet
// simulation — evaluate the join model (Eq. 5-7), validate it against its
// Monte-Carlo twin, and solve the schedule optimization (Eq. 8-10) to find
// the dividing speed.
//
//	go run ./examples/modelstudy
package main

import (
	"fmt"
	"time"

	"spider"
	"spider/internal/sim"
)

func main() {
	fmt.Println("== Join model (Eq. 5-7): p(f, t=4s) for βmax = 5s ==")
	m := spider.PaperJoinModel(5 * time.Second)
	rng := sim.NewRNG(7)
	fmt.Printf("%-8s %-10s %-10s\n", "f", "model", "monte-carlo")
	for _, f := range []float64{0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
		p := m.JoinProbability(f, 4*time.Second)
		s := m.SimulateJoinProbability(rng, f, 4*time.Second, 20000)
		fmt.Printf("%-8.2f %-10.4f %-10.4f\n", f, p, s)
	}
	fmt.Println("\nThe paper's anchors: p(0.30) ≈ 0.75 and p(0.10) ≈ 0.20.")

	fmt.Println("\n== Sensitivity to AP response time (Fig. 3) ==")
	fmt.Printf("%-8s", "βmax")
	fis := []float64{0.10, 0.25, 0.40, 0.50}
	for _, f := range fis {
		fmt.Printf("f=%-8.2f", f)
	}
	fmt.Println()
	for b := 2; b <= 10; b += 2 {
		mm := spider.PaperJoinModel(time.Duration(b) * time.Second)
		fmt.Printf("%-8d", b)
		for _, f := range fis {
			fmt.Printf("%-10.3f", mm.JoinProbability(f, 4*time.Second))
		}
		fmt.Println()
	}

	fmt.Println("\n== Optimal schedules (Eq. 8-10): 75% joined on ch1, 25% available on ch2 ==")
	opt := spider.PaperJoinModel(10 * time.Second)
	fmt.Printf("%-10s %-10s %-10s %-12s\n", "speed", "ch1 kbps", "ch2 kbps", "verdict")
	for _, v := range []float64{2.5, 5, 10, 20} {
		T := spider.Time(2 * 100 / v * 1e9)
		sol := spider.OptimalSchedule(spider.ScheduleProblem{
			Model: opt, Bw: 11e6, T: T,
			Channels: []spider.ChannelInput{{Joined: 0.75 * 11e6}, {Available: 0.25 * 11e6}},
		}, 0.02)
		verdict := "switch channels"
		if sol.PerChannelBps[1] < 0.05*11e6 {
			verdict = "stay on ch1"
		}
		fmt.Printf("%-10.1f %-10.0f %-10.0f %-12s\n",
			v, sol.PerChannelBps[0]/1000, sol.PerChannelBps[1]/1000, verdict)
	}

	div := spider.DividingSpeed(opt, 11e6,
		[]spider.ChannelInput{{Joined: 0.75 * 11e6}, {Available: 0.25 * 11e6}},
		100, 2.5, 25, 1.25, 0.02)
	fmt.Printf("\ndividing speed for the 75/25 split ≈ %.1f m/s (paper: ≈10 m/s)\n", div)
}
