// Adaptive: the paper's future-work extension (Section 4.8) in action — a
// scheduler that stays on one channel at vehicular speed but rotates all
// three channels when moving slowly, compared against both static modes at
// two speeds.
//
//	go run ./examples/adaptive
//
// At 15 m/s the adaptive mode should track the single-channel throughput;
// at 3 m/s it should pick up the multi-channel mode's extra connectivity.
package main

import (
	"fmt"
	"time"

	"spider"
)

func run(preset spider.Preset, speed float64, sites []spider.APSite, loop []spider.Point) spider.Result {
	return spider.Run(spider.ScenarioConfig{
		Seed:     3,
		Duration: 8 * time.Minute,
		Preset:   preset,
		Mobility: spider.Route(loop, speed, true),
		Sites:    sites,
	})
}

func main() {
	loop := []spider.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	route := append(append([]spider.Point(nil), loop...), loop[0])
	deploy := spider.DefaultDeploy()
	deploy.OpenFraction = 0.5
	sites := spider.Deploy(3, route, deploy)
	fmt.Printf("adaptive scheduling demo: %d APs, 3.6 km loop\n", len(sites))

	for _, speed := range []float64{15, 3} {
		fmt.Printf("\n-- speed %.0f m/s --\n", speed)
		fmt.Printf("%-24s %12s %14s\n", "mode", "throughput", "connectivity")
		for _, cfg := range []struct {
			name   string
			preset spider.Preset
		}{
			{"single-channel (static)", spider.SingleChannelMultiAP},
			{"multi-channel (static)", spider.MultiChannelMultiAP},
			{"adaptive", spider.Adaptive},
		} {
			res := run(cfg.preset, speed, sites, loop)
			fmt.Printf("%-24s %8.1f KB/s %12.1f %%\n",
				cfg.name, res.ThroughputKBps, res.Connectivity*100)
		}
	}
	fmt.Println("\nadaptive follows the better static mode at each speed (threshold 10 m/s).")
}
