// Downtown: the paper's Table 2 in miniature — one vehicle looping a
// downtown block while every Spider configuration takes a turn.
//
//	go run ./examples/downtown [-minutes 8]
//
// Expect the single-channel multi-AP mode to win on throughput by a wide
// margin and the multi-channel multi-AP mode to win on connectivity,
// exactly the trade-off Section 4.3 reports.
package main

import (
	"flag"
	"fmt"
	"time"

	"spider"
)

func main() {
	minutes := flag.Int("minutes", 8, "simulated minutes per configuration")
	seed := flag.Int64("seed", 1, "random seed (same town for all configs)")
	flag.Parse()

	loop := []spider.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	route := append(append([]spider.Point(nil), loop...), loop[0])
	sites := spider.Deploy(*seed, route, spider.DefaultDeploy())
	open := 0
	for _, s := range sites {
		if s.Open {
			open++
		}
	}
	fmt.Printf("downtown: %d APs (%d open) on a 3.6 km loop, 10 m/s, %d min per config\n\n",
		len(sites), open, *minutes)

	configs := []struct {
		name   string
		preset spider.Preset
	}{
		{"(1) channel 1, multi-AP", spider.SingleChannelMultiAP},
		{"(2) channel 1, single-AP", spider.SingleChannelSingleAP},
		{"(3) multi-channel, multi-AP", spider.MultiChannelMultiAP},
		{"(4) multi-channel, single-AP", spider.MultiChannelSingleAP},
		{"stock MadWiFi-style driver", spider.Stock},
	}
	fmt.Printf("%-32s %12s %14s %8s\n", "configuration", "throughput", "connectivity", "links")
	for _, cfg := range configs {
		res := spider.Run(spider.ScenarioConfig{
			Seed:     *seed,
			Duration: time.Duration(*minutes) * time.Minute,
			Preset:   cfg.preset,
			Mobility: spider.Route(loop, 10, true),
			Sites:    sites,
		})
		fmt.Printf("%-32s %8.1f KB/s %12.1f %% %8d\n",
			cfg.name, res.ThroughputKBps, res.Connectivity*100, res.LinkUps)
	}
	fmt.Println("\npaper's Table 2 shape: (1) wins throughput ≈4× over (3); (3) wins connectivity.")
}
